package fleet

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Action names a scenario intervention.
type Action string

// The timed-event actions of the scenario language.
const (
	ActionFail           Action = "fail"
	ActionRepair         Action = "repair"
	ActionThrottle       Action = "throttle"
	ActionUnthrottle     Action = "unthrottle"
	ActionPowerCap       Action = "power_cap"
	ActionUncap          Action = "uncap"
	ActionStraggle       Action = "straggle"
	ActionUnstraggle     Action = "unstraggle"
	ActionSetUtilization Action = "set_utilization"
)

// AllNodes is the Target.Node sentinel meaning "no specific node".
const AllNodes = -1

// Target selects the nodes a timed event applies to. Filters compose:
// the candidate set starts as all nodes, is narrowed by Type and Node,
// then truncated by Count or Fraction (lowest node indices first, so
// selection is deterministic).
type Target struct {
	// Type restricts to nodes of this node-type name; empty matches all.
	Type string
	// Node restricts to one node index; AllNodes (-1) disables.
	Node int
	// Count keeps the first Count matching nodes; 0 keeps all.
	Count int
	// Fraction keeps the first ceil(Fraction * matching) nodes; 0 keeps
	// all. Ignored when Count is set.
	Fraction float64
}

// EveryNode returns the target matching the whole fleet.
func EveryNode() Target { return Target{Node: AllNodes} }

// Validate checks the target.
func (t Target) Validate() error {
	if t.Node < AllNodes {
		return fmt.Errorf("fleet: target node index %d", t.Node)
	}
	if t.Count < 0 {
		return fmt.Errorf("fleet: negative target count %d", t.Count)
	}
	if t.Fraction < 0 || t.Fraction > 1 || math.IsNaN(t.Fraction) {
		return fmt.Errorf("fleet: target fraction %g outside [0, 1]", t.Fraction)
	}
	return nil
}

// selectNodes resolves the target against the fleet, in index order.
func (t Target) selectNodes(nodes []*node) []*node {
	out := make([]*node, 0, len(nodes))
	for _, n := range nodes {
		if t.Type != "" && n.group.Type.Name != t.Type {
			continue
		}
		if t.Node != AllNodes && n.index != t.Node {
			continue
		}
		out = append(out, n)
	}
	keep := len(out)
	switch {
	case t.Count > 0:
		keep = t.Count
	case t.Fraction > 0:
		keep = int(math.Ceil(t.Fraction * float64(len(out))))
	}
	if keep < len(out) {
		out = out[:keep]
	}
	return out
}

// TimedEvent is one scheduled scenario intervention. Exactly the
// parameter matching its action is consulted; Validate enforces it is
// present and sane.
type TimedEvent struct {
	// At is the virtual time the event fires.
	At units.Seconds
	// Action selects the intervention.
	Action Action
	// Target selects the affected nodes (ignored by set_utilization).
	Target Target
	// Factor is the throttle frequency multiplier, in (0, 1).
	Factor float64
	// Slowdown is the straggle factor, >= 1.
	Slowdown float64
	// Watts is the power_cap level per node; exclusive with Fraction.
	Watts units.Watts
	// Fraction is the power_cap level as a fraction of each targeted
	// node's nominal peak, in (0, 1]; exclusive with Watts.
	Fraction float64
	// Utilization is the new offered load for set_utilization.
	Utilization float64
	// For reverts the event after this long: fail→repair,
	// throttle→unthrottle, power_cap→uncap, straggle→unstraggle.
	// Zero means permanent (until a later event reverts it).
	For units.Seconds
}

// Validate checks the event against the run horizon.
func (e *TimedEvent) Validate(horizon units.Seconds) error {
	if e.At < 0 || !e.At.IsFinite() || e.At > horizon {
		return fmt.Errorf("fleet: event at %v outside [0, %v]", e.At, horizon)
	}
	if e.For < 0 || !e.For.IsFinite() {
		return fmt.Errorf("fleet: negative revert horizon %v", e.For)
	}
	if err := e.Target.Validate(); err != nil {
		return err
	}
	switch e.Action {
	case ActionFail, ActionRepair, ActionUnthrottle, ActionUncap, ActionUnstraggle:
		// No parameters.
	case ActionThrottle:
		if e.Factor <= 0 || e.Factor >= 1 {
			return fmt.Errorf("fleet: throttle factor %g outside (0, 1)", e.Factor)
		}
	case ActionStraggle:
		if e.Slowdown < 1 {
			return fmt.Errorf("fleet: straggle slowdown %g below 1", e.Slowdown)
		}
	case ActionPowerCap:
		if (e.Watts > 0) == (e.Fraction > 0) {
			return fmt.Errorf("fleet: power_cap needs exactly one of watts or fraction")
		}
		if e.Watts < 0 {
			return fmt.Errorf("fleet: negative power cap %v", e.Watts)
		}
		if e.Fraction < 0 || e.Fraction > 1 {
			return fmt.Errorf("fleet: power cap fraction %g outside (0, 1]", e.Fraction)
		}
	case ActionSetUtilization:
		if e.Utilization < 0 || math.IsNaN(e.Utilization) {
			return fmt.Errorf("fleet: set_utilization value %g", e.Utilization)
		}
		if e.For != 0 {
			return fmt.Errorf("fleet: set_utilization does not support 'for'")
		}
	default:
		return fmt.Errorf("fleet: unknown action %q", e.Action)
	}
	return nil
}

// revertAction maps an action to its inverse for For-scoped events.
func revertAction(a Action) (Action, bool) {
	switch a {
	case ActionFail:
		return ActionRepair, true
	case ActionThrottle:
		return ActionUnthrottle, true
	case ActionPowerCap:
		return ActionUncap, true
	case ActionStraggle:
		return ActionUnstraggle, true
	}
	return "", false
}

// scheduleTimedEvents arms the scenario's interventions on the
// coordinator engine. Events fire in (time, spec order); a For-scoped
// event schedules its own revert against the same resolved target.
func (s *Simulator) scheduleTimedEvents(record recorder) {
	for i := range s.spec.Events {
		ev := s.spec.Events[i] // copy: the closure outlives the loop
		if _, err := s.coord.ScheduleAt(float64(ev.At), func() {
			s.applyTimedEvent(&ev, record)
		}); err != nil {
			panic(err)
		}
	}
}

// applyTimedEvent executes one intervention: one accounting advance and
// one rebalance for the whole batch, however many nodes it touches.
func (s *Simulator) applyTimedEvent(ev *TimedEvent, record recorder) {
	now := s.coord.Now()
	if ev.Action == ActionSetUtilization {
		s.advanceAll(now)
		s.utilization = ev.Utilization
		s.rebalance(now)
		record(ChaosRecord{Time: now, Node: AllNodes, Kind: string(ev.Action)})
		return
	}

	targets := ev.Target.selectNodes(s.nodes)
	if len(targets) == 0 {
		return
	}
	s.advanceAll(now)
	for _, n := range targets {
		switch ev.Action {
		case ActionFail:
			if !n.failed {
				n.failed = true
				n.failures++
				s.counters.failures++
				record(ChaosRecord{Time: now, Node: n.index, Kind: "fail"})
			}
		case ActionRepair:
			if n.failed {
				n.failed = false
				n.repairs++
				s.counters.repairs++
				record(ChaosRecord{Time: now, Node: n.index, Kind: "repair"})
			}
		case ActionThrottle:
			if n.throttleFactor != ev.Factor {
				n.throttleFactor = ev.Factor
				n.throttles++
				s.counters.throttles++
				record(ChaosRecord{Time: now, Node: n.index, Kind: "throttle"})
			}
		case ActionUnthrottle:
			if n.throttleFactor != 1 {
				n.throttleFactor = 1
				record(ChaosRecord{Time: now, Node: n.index, Kind: "unthrottle"})
			}
		case ActionPowerCap:
			watts := float64(ev.Watts)
			if ev.Fraction > 0 {
				watts = ev.Fraction * float64(n.group.Type.NominalPeak)
			}
			if n.capWatts != watts {
				n.capWatts = watts
				n.caps++
				s.counters.caps++
				record(ChaosRecord{Time: now, Node: n.index, Kind: "power_cap"})
			}
		case ActionUncap:
			if n.capWatts != 0 {
				n.capWatts = 0
				record(ChaosRecord{Time: now, Node: n.index, Kind: "uncap"})
			}
		case ActionStraggle:
			if n.stragglerFactor != ev.Slowdown {
				n.stragglerFactor = ev.Slowdown
				if !n.straggler {
					n.straggler = true
					s.counters.stragglers++
				}
				record(ChaosRecord{Time: now, Node: n.index, Kind: "straggler"})
			}
		case ActionUnstraggle:
			if n.stragglerFactor != 1 {
				n.stragglerFactor = 1
				n.straggler = false
				record(ChaosRecord{Time: now, Node: n.index, Kind: "unstraggler"})
			}
		}
		n.recalc()
	}
	s.rebalance(now)

	if ev.For > 0 {
		if inverse, ok := revertAction(ev.Action); ok {
			revert := *ev
			revert.Action = inverse
			revert.For = 0
			if _, err := s.coord.Schedule(float64(ev.For), func() {
				s.applyTimedEvent(&revert, record)
			}); err != nil {
				panic(err)
			}
		}
	}
}
