package fleet

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/cluster"
	"repro/internal/units"
	"repro/internal/workload"
)

func chaosSpec(t *testing.T, seed uint64) Spec {
	t.Helper()
	spec := testSpec(t, "EP", 0.8, 600)
	spec.Seed = seed
	spec.Chaos = Chaos{
		Enabled:           true,
		MTBF:              400,
		MTTR:              100,
		ThrottleEvery:     300,
		ThrottleFor:       60,
		ThrottleFactor:    0.5,
		CapEvery:          500,
		CapFor:            80,
		CapFraction:       0.9,
		StragglerProb:     0.2,
		StragglerSlowdown: 1.8,
	}
	spec.Events = []TimedEvent{
		{At: 200, Action: ActionFail, Target: Target{Node: AllNodes, Fraction: 0.2}, For: 100},
		{At: 450, Action: ActionSetUtilization, Target: EveryNode(), Utilization: 0.4},
	}
	return spec
}

// TestSeedReproducibility is the determinism contract: the same
// scenario and seed produce a bitwise-identical summary (and chaos
// log); a different seed produces a different chaos event stream.
func TestSeedReproducibility(t *testing.T) {
	marshal := func(seed uint64) ([]byte, []ChaosRecord) {
		res := runSpec(t, chaosSpec(t, seed))
		b, err := json.Marshal(res.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return b, res.ChaosLog
	}

	b1, log1 := marshal(7)
	b2, log2 := marshal(7)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same seed, different summaries:\n%s\n%s", b1, b2)
	}
	if len(log1) != len(log2) {
		t.Fatalf("same seed, different chaos log lengths: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("same seed, chaos logs diverge at %d: %+v vs %+v", i, log1[i], log2[i])
		}
	}

	b3, log3 := marshal(8)
	if bytes.Equal(b1, b3) {
		t.Error("different seeds produced identical summaries")
	}
	same := len(log1) == len(log3)
	if same {
		for i := range log1 {
			if log1[i] != log3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical chaos event streams")
	}
}

// TestSeedReproducibilityAtScale runs a four-type, 1200-node fleet with
// chaos twice and requires byte-identical summaries — the shared-clock
// loop stays deterministic when thousands of engines interleave.
func TestSeedReproducibilityAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1200-node fleet in -short mode")
	}
	catalog, _ := testEnv(t)
	// The paper workloads carry demands for A9 and K10 only; a synthetic
	// profile covers the whole catalog so the fleet can mix all four
	// types.
	profiles, err := workload.Generate(catalog, workload.DefaultSyntheticSpec(), 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	wl := profiles[0]
	var templates []cluster.Group
	for _, tc := range []struct {
		name  string
		count int
	}{{"A9", 800}, {"A15", 200}, {"K10", 150}, {"XeonE5", 50}} {
		nt, err := catalog.Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		templates = append(templates, cluster.FullNodes(nt, tc.count))
	}
	spec := Spec{
		Name:        "scale",
		Workload:    wl,
		Templates:   templates,
		Duration:    120,
		Slice:       units.Seconds(5),
		Utilization: 0.7,
		Seed:        42,
		Chaos: Chaos{
			Enabled: true,
			MTBF:    1800, MTTR: 300,
			ThrottleEvery: 2400, ThrottleFor: 120, ThrottleFactor: 0.6,
			StragglerProb: 0.05, StragglerSlowdown: 2,
		},
	}

	run := func() ([]byte, Summary) {
		sim, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Summary)
		if err != nil {
			t.Fatal(err)
		}
		return b, res.Summary
	}
	b1, s1 := run()
	b2, _ := run()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("1200-node run not reproducible:\n%s\n%s", b1, b2)
	}
	if s1.Nodes != 1200 {
		t.Fatalf("nodes = %d, want 1200", s1.Nodes)
	}
	if s1.Events < 1200 {
		t.Errorf("only %d events across 1200 nodes", s1.Events)
	}
	if s1.Failures == 0 && s1.Stragglers == 0 {
		t.Error("chaos produced nothing across 1200 nodes")
	}
	if e := relErr(s1.CompletedUnits+s1.LostUnits, s1.OfferedUnits); e > 1e-9 {
		t.Errorf("conservation violated at scale (rel err %g)", e)
	}
}
