package fleet

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/units"
	"repro/internal/workload"
)

// testEnv returns the default catalog and paper workload registry.
func testEnv(t *testing.T) (*hardware.Catalog, *workload.Registry) {
	t.Helper()
	catalog := hardware.DefaultCatalog()
	registry, err := workload.PaperRegistry(catalog)
	if err != nil {
		t.Fatal(err)
	}
	return catalog, registry
}

func testSpec(t *testing.T, wlName string, u float64, dur units.Seconds) Spec {
	t.Helper()
	catalog, registry := testEnv(t)
	a9, err := catalog.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := registry.Lookup(wlName)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Name:     "test",
		Workload: wl,
		Templates: []cluster.Group{
			cluster.FullNodes(a9, 8),
			cluster.FullNodes(k10, 2),
		},
		Duration:    dur,
		Slice:       1 * 1.0,
		Utilization: u,
		Seed:        1,
	}
}

func runSpec(t *testing.T, spec Spec) *Result {
	t.Helper()
	sim, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestSteadyStateWorkConservation(t *testing.T) {
	spec := testSpec(t, "EP", 0.6, 120)
	res := runSpec(t, spec)
	s := res.Summary

	if s.Nodes != 10 {
		t.Fatalf("nodes = %d, want 10", s.Nodes)
	}
	if s.LostUnits != 0 {
		t.Errorf("lost %g units in a clean under-utilized run", s.LostUnits)
	}
	if e := relErr(s.CompletedUnits+s.LostUnits, s.OfferedUnits); e > 1e-9 {
		t.Errorf("offered != completed + lost: %g vs %g (+%g), rel err %g",
			s.OfferedUnits, s.CompletedUnits, s.LostUnits, e)
	}
	if s.Failures != 0 || s.Availability != 1 || s.DownNodeSeconds != 0 {
		t.Errorf("clean run has chaos accounting: %+v", s)
	}
	if s.EnergyJoules <= 0 || s.AvgPowerWatts <= 0 || s.PeakPowerWatts <= 0 {
		t.Errorf("degenerate energy accounting: %+v", s)
	}
	// Power must sit between the idle floor and the busy ceiling.
	idle := 8*float64(hardware.NewA9().Power.Idle) + 2*float64(hardware.NewK10().Power.Idle)
	if s.AvgPowerWatts < idle {
		t.Errorf("avg power %g below idle floor %g", s.AvgPowerWatts, idle)
	}
	if s.PeakPowerWatts < s.AvgPowerWatts {
		t.Errorf("peak %g below average %g", s.PeakPowerWatts, s.AvgPowerWatts)
	}
	// Per-type rows fold back to the totals.
	var units, energy float64
	var nodes int
	for _, ts := range s.PerType {
		units += ts.CompletedUnits
		energy += ts.EnergyJoules
		nodes += ts.Nodes
	}
	if nodes != s.Nodes || relErr(units, s.CompletedUnits) > 1e-9 || relErr(energy, s.EnergyJoules) > 1e-9 {
		t.Errorf("per-type rows do not fold to totals: %+v", s.PerType)
	}
}

func TestCompletedMatchesOfferedRate(t *testing.T) {
	// In a clean, under-utilized run the completion integral is exactly
	// utilization * nominal capacity * duration.
	spec := testSpec(t, "x264", 0.4, 90)
	sim, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	nominal := sim.nominalRate
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.4 * nominal * 90
	if e := relErr(res.Summary.CompletedUnits, want); e > 1e-9 {
		t.Errorf("completed = %g, want %g (rel err %g)", res.Summary.CompletedUnits, want, e)
	}
	if e := relErr(res.Summary.OfferedUnits, want); e > 1e-9 {
		t.Errorf("offered = %g, want %g (rel err %g)", res.Summary.OfferedUnits, want, e)
	}
}

func TestOverload(t *testing.T) {
	// Offering 150% of capacity saturates every node and loses the rest.
	spec := testSpec(t, "EP", 1.5, 60)
	res := runSpec(t, spec)
	s := res.Summary
	if s.LostUnits <= 0 {
		t.Fatal("overloaded fleet lost no work")
	}
	if e := relErr(s.LostUnits, s.OfferedUnits/3); e > 1e-9 {
		t.Errorf("lost %g, want one third of offered %g", s.LostUnits, s.OfferedUnits)
	}
	if e := relErr(s.CompletedUnits+s.LostUnits, s.OfferedUnits); e > 1e-9 {
		t.Errorf("conservation violated under overload (rel err %g)", e)
	}
}

func TestUtilizationScalesEnergy(t *testing.T) {
	low := runSpec(t, testSpec(t, "EP", 0.2, 60)).Summary
	high := runSpec(t, testSpec(t, "EP", 0.9, 60)).Summary
	if high.EnergyJoules <= low.EnergyJoules {
		t.Errorf("energy not increasing in utilization: %g at 0.9 vs %g at 0.2",
			high.EnergyJoules, low.EnergyJoules)
	}
	// Busier fleets are more energy proportional: the idle draw
	// amortizes over more work.
	if high.EnergyProportionality <= low.EnergyProportionality {
		t.Errorf("EP ratio not increasing in utilization: %g at 0.9 vs %g at 0.2",
			high.EnergyProportionality, low.EnergyProportionality)
	}
	if high.EnergyProportionality > 1+1e-9 {
		t.Errorf("EP ratio %g above 1", high.EnergyProportionality)
	}
}

func TestSetUtilizationEvent(t *testing.T) {
	spec := testSpec(t, "EP", 0.5, 100)
	spec.Events = []TimedEvent{{
		At: 40, Action: ActionSetUtilization, Target: EveryNode(), Utilization: 0.25,
	}}
	sim, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	nominal := sim.nominalRate
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := nominal * (0.5*40 + 0.25*60)
	if e := relErr(res.Summary.OfferedUnits, want); e > 1e-9 {
		t.Errorf("two-phase offered = %g, want %g (rel err %g)", res.Summary.OfferedUnits, want, e)
	}
	if e := relErr(res.Summary.CompletedUnits, want); e > 1e-9 {
		t.Errorf("two-phase completed = %g, want %g (rel err %g)", res.Summary.CompletedUnits, want, e)
	}
}

func TestSpecValidation(t *testing.T) {
	catalog, registry := testEnv(t)
	a9, _ := catalog.Lookup("A9")
	wl, _ := registry.Lookup("EP")
	base := Spec{
		Workload:    wl,
		Templates:   []cluster.Group{cluster.FullNodes(a9, 2)},
		Duration:    10,
		Utilization: 0.5,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no workload", func(s *Spec) { s.Workload = nil }},
		{"no templates", func(s *Spec) { s.Templates = nil }},
		{"zero duration", func(s *Spec) { s.Duration = 0 }},
		{"negative utilization", func(s *Spec) { s.Utilization = -1 }},
		{"bad chaos", func(s *Spec) {
			s.Chaos = Chaos{Enabled: true, MTBF: 10} // missing MTTR
		}},
		{"bad event action", func(s *Spec) {
			s.Events = []TimedEvent{{At: 1, Action: "explode", Target: EveryNode()}}
		}},
		{"event past horizon", func(s *Spec) {
			s.Events = []TimedEvent{{At: 99, Action: ActionFail, Target: EveryNode()}}
		}},
		{"throttle without factor", func(s *Spec) {
			s.Events = []TimedEvent{{At: 1, Action: ActionThrottle, Target: EveryNode()}}
		}},
		{"power cap with both levels", func(s *Spec) {
			s.Events = []TimedEvent{{At: 1, Action: ActionPowerCap, Target: EveryNode(), Watts: 3, Fraction: 0.5}}
		}},
		{"unsupported node type", func(s *Spec) {
			x, err := catalog.Lookup("XeonE5")
			if err != nil {
				t.Fatal(err)
			}
			narrow := workload.NewProfile("narrow", workload.DomainSynthetic, "u", 100)
			if err := narrow.SetDemand("A9", workload.Demand{CoreCycles: 1e9, Intensity: 1}); err != nil {
				t.Fatal(err)
			}
			s.Workload = narrow
			s.Templates = []cluster.Group{cluster.FullNodes(x, 1)}
		}},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: invalid spec accepted", tc.name)
		}
	}
}

func TestRunOnlyOnce(t *testing.T) {
	sim, err := New(testSpec(t, "EP", 0.5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestMetricAccessors(t *testing.T) {
	res := runSpec(t, testSpec(t, "EP", 0.5, 10))
	for _, name := range MetricNames() {
		if _, ok := res.Summary.Metric(name); !ok {
			t.Errorf("MetricNames lists %q but Metric rejects it", name)
		}
	}
	if _, ok := res.Summary.Metric("no_such_metric"); ok {
		t.Error("unknown metric accepted")
	}
	if v, _ := res.Summary.Metric("nodes"); v != 10 {
		t.Errorf("nodes metric = %g, want 10", v)
	}
}
