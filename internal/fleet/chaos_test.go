package fleet

import (
	"testing"

	"repro/internal/units"
)

func TestChaosFailuresLoseWorkAtFullLoad(t *testing.T) {
	clean := runSpec(t, testSpec(t, "EP", 1.0, 600)).Summary

	spec := testSpec(t, "EP", 1.0, 600)
	spec.Chaos = Chaos{Enabled: true, MTBF: 300, MTTR: 120}
	chaotic := runSpec(t, spec).Summary

	if chaotic.Failures == 0 {
		t.Fatal("no failures with MTBF twice the horizon over 10 nodes")
	}
	if chaotic.Availability >= 1 {
		t.Errorf("availability %g with %d failures", chaotic.Availability, chaotic.Failures)
	}
	if chaotic.DownNodeSeconds <= 0 {
		t.Error("failures accrued no downtime")
	}
	// At full load there is no spare capacity: every down node-second
	// loses work.
	if chaotic.CompletedUnits >= clean.CompletedUnits {
		t.Errorf("chaos completed %g >= clean %g", chaotic.CompletedUnits, clean.CompletedUnits)
	}
	if chaotic.LostUnits <= 0 {
		t.Error("full-load failures lost no work")
	}
	if e := relErr(chaotic.CompletedUnits+chaotic.LostUnits, chaotic.OfferedUnits); e > 1e-9 {
		t.Errorf("conservation violated under chaos (rel err %g)", e)
	}
}

func TestSurvivorsAbsorbFailuresAtLowLoad(t *testing.T) {
	// At 30% load, killing half the fleet leaves 50% of capacity alive:
	// the survivors absorb the whole offered load and nothing is lost.
	spec := testSpec(t, "EP", 0.3, 200)
	spec.Events = []TimedEvent{{
		At: 50, Action: ActionFail, Target: Target{Node: AllNodes, Fraction: 0.5},
	}}
	res := runSpec(t, spec)
	s := res.Summary
	if s.Failures != 5 {
		t.Fatalf("failures = %d, want 5 (half of 10)", s.Failures)
	}
	if s.LostUnits != 0 {
		t.Errorf("survivors did not absorb the load: lost %g units", s.LostUnits)
	}
	if e := relErr(s.CompletedUnits, s.OfferedUnits); e > 1e-9 {
		t.Errorf("completed %g != offered %g under absorbed failures", s.CompletedUnits, s.OfferedUnits)
	}
	// Energy per unit rises anyway: the dead nodes stop drawing, but the
	// survivors run hotter and the offered load keeps its idle share.
	if s.Availability >= 1 {
		t.Errorf("availability %g after permanent failures", s.Availability)
	}
}

func TestTimedFailWithRevert(t *testing.T) {
	spec := testSpec(t, "EP", 1.0, 300)
	spec.Events = []TimedEvent{{
		At: 100, Action: ActionFail, Target: Target{Node: 0}, For: 50,
	}}
	res := runSpec(t, spec)
	s := res.Summary
	if s.Failures != 1 || s.Repairs != 1 {
		t.Fatalf("failures/repairs = %d/%d, want 1/1", s.Failures, s.Repairs)
	}
	if e := relErr(s.DownNodeSeconds, 50); e > 1e-9 {
		t.Errorf("downtime %g node-seconds, want 50", s.DownNodeSeconds)
	}
	// The chaos log carries both edges in order.
	var kinds []string
	for _, r := range res.ChaosLog {
		if r.Node == 0 {
			kinds = append(kinds, r.Kind)
		}
	}
	if len(kinds) != 2 || kinds[0] != "fail" || kinds[1] != "repair" {
		t.Errorf("chaos log for node 0 = %v, want [fail repair]", kinds)
	}
}

func TestThrottleSlowsFleet(t *testing.T) {
	clean := runSpec(t, testSpec(t, "x264", 1.0, 200)).Summary

	spec := testSpec(t, "x264", 1.0, 200)
	spec.Events = []TimedEvent{{
		At: 0, Action: ActionThrottle, Target: EveryNode(), Factor: 0.5,
	}}
	throttled := runSpec(t, spec).Summary

	if throttled.CompletedUnits >= clean.CompletedUnits {
		t.Errorf("throttled fleet completed %g >= clean %g",
			throttled.CompletedUnits, clean.CompletedUnits)
	}
	// DVFS scaling cuts dynamic power superlinearly, so the throttled
	// fleet draws less.
	if throttled.EnergyJoules >= clean.EnergyJoules {
		t.Errorf("throttled fleet energy %g >= clean %g",
			throttled.EnergyJoules, clean.EnergyJoules)
	}
	if throttled.ThrottleEvents != 10 {
		t.Errorf("throttle events = %d, want 10", throttled.ThrottleEvents)
	}
}

func TestPowerCapLimitsPeakPower(t *testing.T) {
	clean := runSpec(t, testSpec(t, "EP", 1.0, 200)).Summary

	spec := testSpec(t, "EP", 1.0, 200)
	spec.Events = []TimedEvent{{
		At: 0, Action: ActionPowerCap, Target: EveryNode(), Fraction: 0.4,
	}}
	capped := runSpec(t, spec).Summary

	if capped.PeakPowerWatts >= clean.PeakPowerWatts {
		t.Errorf("capped peak %g >= clean peak %g", capped.PeakPowerWatts, clean.PeakPowerWatts)
	}
	if capped.CompletedUnits >= clean.CompletedUnits {
		t.Errorf("capped fleet completed %g >= clean %g",
			capped.CompletedUnits, clean.CompletedUnits)
	}
	if capped.PowerCapEvents != 10 {
		t.Errorf("power cap events = %d, want 10", capped.PowerCapEvents)
	}
	// A cap is a ceiling on the dynamic range but cannot dip below the
	// idle floor without powering the node off: the fleet ceiling is
	// sum of max(idle, cap) = 8*max(1.8, 2) + 2*max(45, 24) = 106 W.
	if capped.PeakPowerWatts > 106+1e-9 {
		t.Errorf("capped peak %g exceeds the max(idle, cap) sum 106 W", capped.PeakPowerWatts)
	}
	// The K10 caps (24 W) sit below the K10 idle draw (45 W), so the
	// brawny side must contribute no work at all.
	for _, ts := range capped.PerType {
		if ts.Type == "K10" && ts.CompletedUnits != 0 {
			t.Errorf("K10 completed %g units under a sub-idle cap", ts.CompletedUnits)
		}
	}
}

func TestStragglersRaiseEnergyPerUnit(t *testing.T) {
	clean := runSpec(t, testSpec(t, "EP", 0.8, 200)).Summary

	spec := testSpec(t, "EP", 0.8, 200)
	spec.Events = []TimedEvent{{
		At: 0, Action: ActionStraggle, Target: EveryNode(), Slowdown: 2,
	}}
	slow := runSpec(t, spec).Summary

	if slow.Stragglers != 10 {
		t.Errorf("stragglers = %d, want 10", slow.Stragglers)
	}
	if slow.EnergyPerUnitJoules <= clean.EnergyPerUnitJoules {
		t.Errorf("straggler energy/unit %g <= clean %g",
			slow.EnergyPerUnitJoules, clean.EnergyPerUnitJoules)
	}
}

func TestTargetSelection(t *testing.T) {
	// Kill only the K10s (template order: 8 A9 then 2 K10).
	spec := testSpec(t, "EP", 0.5, 100)
	spec.Events = []TimedEvent{{
		At: 10, Action: ActionFail, Target: Target{Type: "K10", Node: AllNodes},
	}}
	s := runSpec(t, spec).Summary
	if s.Failures != 2 {
		t.Fatalf("failures = %d, want the 2 K10 nodes", s.Failures)
	}
	for _, ts := range s.PerType {
		switch ts.Type {
		case "A9":
			if ts.Failures != 0 {
				t.Errorf("A9 failures = %d, want 0", ts.Failures)
			}
		case "K10":
			if ts.Failures != 2 {
				t.Errorf("K10 failures = %d, want 2", ts.Failures)
			}
			if ts.DownNodeSeconds <= 0 {
				t.Error("failed K10s accrued no downtime")
			}
		}
	}

	// Count targeting picks the lowest indices.
	spec2 := testSpec(t, "EP", 0.5, 100)
	spec2.Events = []TimedEvent{{
		At: 10, Action: ActionFail, Target: Target{Node: AllNodes, Count: 3},
	}}
	res2 := runSpec(t, spec2)
	if res2.Summary.Failures != 3 {
		t.Fatalf("failures = %d, want 3", res2.Summary.Failures)
	}
	for _, r := range res2.ChaosLog {
		if r.Kind == "fail" && r.Node > 2 {
			t.Errorf("count target failed node %d, want indices 0-2", r.Node)
		}
	}
}

func TestChaosBackgroundThrottleAndCaps(t *testing.T) {
	spec := testSpec(t, "EP", 0.7, 600)
	spec.Chaos = Chaos{
		Enabled:           true,
		ThrottleEvery:     200,
		ThrottleFor:       50,
		ThrottleFactor:    0.5,
		CapEvery:          200,
		CapFor:            50,
		CapFraction:       0.6,
		StragglerProb:     0.3,
		StragglerSlowdown: 1.5,
	}
	s := runSpec(t, spec).Summary
	if s.ThrottleEvents == 0 {
		t.Error("no background throttle events over 10 nodes x 600 s")
	}
	if s.PowerCapEvents == 0 {
		t.Error("no background power cap events")
	}
	if s.Stragglers == 0 {
		t.Error("no stragglers at prob 0.3 over 10 nodes")
	}
	if e := relErr(s.CompletedUnits+s.LostUnits, s.OfferedUnits); e > 1e-9 {
		t.Errorf("conservation violated under mixed chaos (rel err %g)", e)
	}
}

func TestPowerSampleTrace(t *testing.T) {
	spec := testSpec(t, "EP", 0.5, 60)
	spec.Slice = units.Seconds(2)
	res := runSpec(t, spec)
	if len(res.PowerTrace) < 30 {
		t.Fatalf("power trace has %d samples, want >= 30", len(res.PowerTrace))
	}
	last := -1.0
	for _, p := range res.PowerTrace {
		if p.Time <= last {
			t.Fatal("power trace not strictly time-ordered")
		}
		last = p.Time
		if p.Power <= 0 || p.Alive != 10 {
			t.Fatalf("degenerate sample %+v", p)
		}
	}
}
