package fleet

import (
	"fmt"

	"repro/internal/units"
)

// Chaos configures the background fault-injection processes. Each
// enabled process runs independently per node, driven by that node's
// own PRNG stream, so the chaos a given node experiences depends only
// on (Spec.Seed, node index) — never on fleet size, event interleaving
// or other nodes' draws.
type Chaos struct {
	// Enabled gates the whole layer; when false the rest is ignored.
	Enabled bool

	// MTBF is the per-node mean time between failures (exponential
	// inter-failure times). Zero disables failures. A failed node powers
	// off — zero draw, zero work — and its load shifts to the survivors.
	MTBF units.Seconds
	// MTTR is the mean repair time (exponential); required with MTBF.
	MTTR units.Seconds

	// ThrottleEvery is the per-node mean time between DVFS throttling
	// onsets (thermal events). Zero disables throttling.
	ThrottleEvery units.Seconds
	// ThrottleFor is the fixed duration of each throttle episode.
	ThrottleFor units.Seconds
	// ThrottleFactor multiplies the core frequency during an episode,
	// in (0, 1).
	ThrottleFactor float64

	// CapEvery is the per-node mean time between power-cap impositions
	// (facility-level capping reaching the node). Zero disables caps.
	CapEvery units.Seconds
	// CapFor is the fixed duration of each cap episode.
	CapFor units.Seconds
	// CapFraction caps the node at this fraction of its nominal peak
	// power, in (0, 1].
	CapFraction float64

	// StragglerProb is the probability that a node is a straggler for
	// the whole run (failing fans, degraded parts, noisy neighbours).
	StragglerProb float64
	// StragglerSlowdown is the straggler's CPU slowdown factor, >= 1.
	StragglerSlowdown float64
}

// Validate checks the chaos configuration.
func (c Chaos) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.MTBF < 0 || c.MTTR < 0 || c.ThrottleEvery < 0 || c.ThrottleFor < 0 ||
		c.CapEvery < 0 || c.CapFor < 0 {
		return fmt.Errorf("fleet: chaos durations must be non-negative")
	}
	if c.MTBF > 0 && c.MTTR <= 0 {
		return fmt.Errorf("fleet: chaos failures need a positive mttr")
	}
	if c.ThrottleEvery > 0 {
		if c.ThrottleFor <= 0 {
			return fmt.Errorf("fleet: chaos throttling needs a positive duration")
		}
		if c.ThrottleFactor <= 0 || c.ThrottleFactor >= 1 {
			return fmt.Errorf("fleet: chaos throttle factor %g outside (0, 1)", c.ThrottleFactor)
		}
	}
	if c.CapEvery > 0 {
		if c.CapFor <= 0 {
			return fmt.Errorf("fleet: chaos power caps need a positive duration")
		}
		if c.CapFraction <= 0 || c.CapFraction > 1 {
			return fmt.Errorf("fleet: chaos cap fraction %g outside (0, 1]", c.CapFraction)
		}
	}
	if c.StragglerProb < 0 || c.StragglerProb > 1 {
		return fmt.Errorf("fleet: straggler probability %g outside [0, 1]", c.StragglerProb)
	}
	if c.StragglerProb > 0 && c.StragglerSlowdown < 1 {
		return fmt.Errorf("fleet: straggler slowdown %g below 1", c.StragglerSlowdown)
	}
	return nil
}

// ChaosRecord is one injected chaos or scenario event, for the run log.
type ChaosRecord struct {
	Time float64 `json:"time"`
	Node int     `json:"node"` // -1 for fleet-level events
	Kind string  `json:"kind"`
}

type recorder func(ChaosRecord)

// armChaos seeds node n's chaos processes on its own engine. Every
// schedule happens from within the node's events, preserving the fleet
// invariant that an action only touches the queue of the engine that
// runs it.
func (s *Simulator) armChaos(n *node, record recorder) {
	c := s.spec.Chaos
	if !c.Enabled {
		return
	}

	// Stragglers are drawn at t=0 and last the whole run. The draw is
	// consumed even for healthy nodes, keeping each stream's offsets
	// fixed per process.
	if c.StragglerProb > 0 {
		if n.rng.Float64() < c.StragglerProb {
			n.stragglerFactor = c.StragglerSlowdown
			n.straggler = true
			n.recalc()
			s.counters.stragglers++
			record(ChaosRecord{Time: 0, Node: n.index, Kind: "straggler"})
		}
	}

	if c.MTBF > 0 {
		var fail, repair func()
		fail = func() {
			now := n.eng.Now()
			s.applyFail(now, n, record)
			if _, err := n.eng.Schedule(n.rng.ExpFloat64(1/float64(c.MTTR)), repair); err != nil {
				panic(err)
			}
		}
		repair = func() {
			now := n.eng.Now()
			s.applyRepair(now, n, record)
			if _, err := n.eng.Schedule(n.rng.ExpFloat64(1/float64(c.MTBF)), fail); err != nil {
				panic(err)
			}
		}
		if _, err := n.eng.Schedule(n.rng.ExpFloat64(1/float64(c.MTBF)), fail); err != nil {
			panic(err)
		}
	}

	if c.ThrottleEvery > 0 {
		var onset, clear func()
		onset = func() {
			now := n.eng.Now()
			s.applyThrottle(now, n, c.ThrottleFactor, record)
			if _, err := n.eng.Schedule(float64(c.ThrottleFor), clear); err != nil {
				panic(err)
			}
		}
		clear = func() {
			now := n.eng.Now()
			s.applyThrottle(now, n, 1, record)
			if _, err := n.eng.Schedule(n.rng.ExpFloat64(1/float64(c.ThrottleEvery)), onset); err != nil {
				panic(err)
			}
		}
		if _, err := n.eng.Schedule(n.rng.ExpFloat64(1/float64(c.ThrottleEvery)), onset); err != nil {
			panic(err)
		}
	}

	if c.CapEvery > 0 {
		watts := c.CapFraction * float64(n.group.Type.NominalPeak)
		var impose, lift func()
		impose = func() {
			now := n.eng.Now()
			s.applyPowerCap(now, n, watts, record)
			if _, err := n.eng.Schedule(float64(c.CapFor), lift); err != nil {
				panic(err)
			}
		}
		lift = func() {
			now := n.eng.Now()
			s.applyPowerCap(now, n, 0, record)
			if _, err := n.eng.Schedule(n.rng.ExpFloat64(1/float64(c.CapEvery)), impose); err != nil {
				panic(err)
			}
		}
		if _, err := n.eng.Schedule(n.rng.ExpFloat64(1/float64(c.CapEvery)), impose); err != nil {
			panic(err)
		}
	}
}

// The apply* mutators are the single write path for chaos state, shared
// by the background chaos processes and the scenario's timed events:
// advance all lazy accounting to now, mutate, rederive, rebalance.

func (s *Simulator) applyFail(now float64, n *node, record recorder) {
	if n.failed {
		return
	}
	s.advanceAll(now)
	n.failed = true
	n.failures++
	s.counters.failures++
	n.recalc()
	s.rebalance(now)
	record(ChaosRecord{Time: now, Node: n.index, Kind: "fail"})
}

func (s *Simulator) applyRepair(now float64, n *node, record recorder) {
	if !n.failed {
		return
	}
	s.advanceAll(now)
	n.failed = false
	n.repairs++
	s.counters.repairs++
	n.recalc()
	s.rebalance(now)
	record(ChaosRecord{Time: now, Node: n.index, Kind: "repair"})
}

func (s *Simulator) applyThrottle(now float64, n *node, factor float64, record recorder) {
	if n.throttleFactor == factor {
		return
	}
	s.advanceAll(now)
	n.throttleFactor = factor
	kind := "throttle"
	if factor >= 1 {
		kind = "unthrottle"
	} else {
		n.throttles++
		s.counters.throttles++
	}
	n.recalc()
	s.rebalance(now)
	record(ChaosRecord{Time: now, Node: n.index, Kind: kind})
}

func (s *Simulator) applyPowerCap(now float64, n *node, watts float64, record recorder) {
	if n.capWatts == watts {
		return
	}
	s.advanceAll(now)
	n.capWatts = watts
	kind := "power_cap"
	if watts <= 0 {
		kind = "uncap"
	} else {
		n.caps++
		s.counters.caps++
	}
	n.recalc()
	s.rebalance(now)
	record(ChaosRecord{Time: now, Node: n.index, Kind: kind})
}

func (s *Simulator) applyStraggle(now float64, n *node, slowdown float64, record recorder) {
	if n.stragglerFactor == slowdown {
		return
	}
	s.advanceAll(now)
	n.stragglerFactor = slowdown
	kind := "straggler"
	if slowdown <= 1 {
		kind = "unstraggler"
		n.straggler = false
	} else if !n.straggler {
		n.straggler = true
		s.counters.stragglers++
	}
	n.recalc()
	s.rebalance(now)
	record(ChaosRecord{Time: now, Node: n.index, Kind: kind})
}
