// Package fleet promotes the per-node measurement substrate
// (internal/des + internal/simulator) to a shared-clock multi-node
// fleet simulator: thousands of heterogeneous nodes, each owning its
// own discrete-event engine, advanced in global timestamp order by a
// coordinator that repeatedly selects the engine whose next event is
// earliest (the HasPendingEvents / PeekNextEventTime / ProcessNextEvent
// primitives of internal/des).
//
// Where internal/simulator executes one job on one configuration and
// stops, the fleet runs a continuous offered load against a long-lived
// population of nodes and integrates energy, completed work and lost
// work over a virtual horizon — while a chaos layer injects node
// failures, DVFS throttling, power-cap events and stragglers from
// seed-reproducible per-node PRNG streams. This is the substrate for
// re-asking the paper's energy-proportionality questions under
// failures rather than steady state.
//
// Determinism contract: a fleet run is a pure function of its Spec
// (including Seed). Events across engines are ordered by (virtual
// time, engine index, per-engine schedule order); chaos draws come
// from per-node streams derived only from (Seed, node index); and all
// summary aggregation iterates in node-index or sorted-type order.
// Two runs of the same Spec produce bitwise-identical summaries.
package fleet

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// Spec configures a fleet run. The zero value is invalid: a spec needs
// at least one template, a workload and a positive duration.
type Spec struct {
	// Name labels the run in summaries and telemetry.
	Name string
	// Workload is the service-demand profile every node executes.
	Workload *workload.Profile
	// Templates define the heterogeneous population: Count nodes of the
	// group's type at (Cores, Freq) per template. Node indices are
	// assigned in template order, first template first.
	Templates []cluster.Group
	// Duration is the virtual horizon of the run.
	Duration units.Seconds
	// Slice is the heartbeat period of each node's engine and the
	// fleet-wide power sampling interval. Zero defaults to 1 s.
	Slice units.Seconds
	// Utilization is the offered load as a fraction of the fleet's
	// nominal (healthy, uncapped) processing capacity. Values above 1
	// offer more work than the fleet can complete; the excess is
	// accounted as lost. Timed set_utilization events change it mid-run.
	Utilization float64
	// Seed drives every random draw of the run (chaos streams).
	Seed uint64
	// Latency, when set, turns on the analytic tail-latency probe: at
	// every power sample the currently alive capacity is fed through the
	// selected queueing kernel at the offered load. Nil keeps summaries
	// byte-identical to pre-probe runs.
	Latency *LatencySpec
	// Chaos configures the background chaos injection processes.
	Chaos Chaos
	// Events are the scenario's timed interventions, applied in time
	// order on the coordinator engine.
	Events []TimedEvent
}

// Validate checks the spec without running it.
func (s *Spec) Validate() error {
	if s.Workload == nil {
		return errors.New("fleet: spec has no workload")
	}
	if len(s.Templates) == 0 {
		return errors.New("fleet: spec has no node templates")
	}
	for i, g := range s.Templates {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("fleet: template %d: %w", i, err)
		}
		if !s.Workload.Supports(g.Type.Name) {
			return fmt.Errorf("fleet: workload %s has no demand for node type %s",
				s.Workload.Name, g.Type.Name)
		}
	}
	if !(s.Duration > 0) || !s.Duration.IsFinite() {
		return fmt.Errorf("fleet: non-positive duration %v", s.Duration)
	}
	if s.Slice < 0 || (s.Slice > 0 && s.Duration/s.Slice > 50e6) {
		return fmt.Errorf("fleet: slice %v yields more than 50M heartbeats over %v", s.Slice, s.Duration)
	}
	if s.Utilization < 0 || math.IsNaN(s.Utilization) {
		return fmt.Errorf("fleet: negative utilization %g", s.Utilization)
	}
	if err := s.Chaos.Validate(); err != nil {
		return err
	}
	if s.Latency != nil {
		if err := s.Latency.Validate(); err != nil {
			return err
		}
	}
	for i := range s.Events {
		if err := s.Events[i].Validate(s.Duration); err != nil {
			return fmt.Errorf("fleet: event %d: %w", i, err)
		}
	}
	return nil
}

// LatencySpec configures the fleet's analytic tail-latency probe. At
// every power sample the fleet's current alive (possibly degraded)
// aggregate capacity becomes the service rate of the selected queueing
// kernel serving the offered load, so node failures, throttling and
// power caps surface as a longer analytic tail rather than only as
// lost work. An M/M/k kernel with Servers == 0 tracks the alive node
// count, so repair and failure change the pooling, not just the rate.
type LatencySpec struct {
	// Kernel selects the queueing model. The zero value is the paper's
	// M/D/1.
	Kernel queueing.Spec
	// Percentile is the probed response-time percentile in [0, 100).
	// Zero defaults to 95.
	Percentile float64
}

// Validate checks the latency spec without running it.
func (l *LatencySpec) Validate() error {
	if l.Percentile < 0 || l.Percentile >= 100 || math.IsNaN(l.Percentile) {
		return fmt.Errorf("fleet: latency percentile %g outside [0, 100)", l.Percentile)
	}
	spec := l.Kernel
	if spec.Kind == queueing.KindMMK && spec.Servers == 0 {
		spec.Servers = 1 // zero means "track the alive node count"
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("fleet: latency kernel: %w", err)
	}
	return nil
}

// percentile returns the effective probe percentile.
func (l *LatencySpec) percentile() float64 {
	if l.Percentile == 0 {
		return 95
	}
	return l.Percentile
}

// kernelLabel names the kernel in summaries, rendering the alive-count
// M/M/k as "mmk(k=alive)".
func (l *LatencySpec) kernelLabel() string {
	if l.Kernel.Kind == queueing.KindMMK && l.Kernel.Servers == 0 {
		return "mmk(k=alive)"
	}
	return l.Kernel.String()
}

// NodeCount returns the total number of nodes the spec describes.
func (s *Spec) NodeCount() int {
	n := 0
	for _, g := range s.Templates {
		n += g.Count
	}
	return n
}

// Simulator is one fleet run in progress. Construct with New, execute
// with Run.
type Simulator struct {
	spec  Spec
	nodes []*node
	coord *des.Engine // engine 0: scenario events, chaos-free fleet work
	heap  engineHeap

	slice       float64
	horizon     float64
	utilization float64
	nominalRate float64 // healthy full-speed fleet capacity, units/s

	// Lazily integrated work flows: offered load, and the part of it
	// beyond alive capacity (lost).
	offeredRate  float64
	lostRate     float64
	flowLastT    float64
	offeredUnits stats.KahanSum
	lostUnits    stats.KahanSum

	peakPower   float64
	powerSample []PowerSample

	// Tail-latency probe accumulators (spec.Latency != nil only).
	latencyMax       float64
	latencySum       stats.KahanSum
	latencySamples   int
	latencySaturated int

	counters chaosCounters

	// telemetry (no-ops when no registry is installed)
	aliveGauge *telemetry.Gauge
	powerGauge *telemetry.Gauge
}

// PowerSample is one fleet-wide power reading, taken every Slice.
type PowerSample struct {
	Time  float64 // seconds
	Power float64 // watts, whole fleet
	Alive int     // nodes up
}

// chaosCounters tallies injected events, both timed and chaotic.
type chaosCounters struct {
	failures, repairs, throttles, caps, stragglers int
}

// New builds a simulator from the spec. The spec is copied; mutating it
// after New has no effect on the run.
func New(spec Spec) (*Simulator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	slice := float64(spec.Slice)
	if slice == 0 {
		slice = 1
	}
	s := &Simulator{
		spec:        spec,
		coord:       des.New(),
		slice:       slice,
		horizon:     float64(spec.Duration),
		utilization: spec.Utilization,
	}
	reg := telemetry.Global()
	s.aliveGauge = reg.Gauge("fleet.alive_nodes")
	s.powerGauge = reg.Gauge("fleet.power_watts")

	for ti, g := range spec.Templates {
		d, err := spec.Workload.Demand(g.Type.Name)
		if err != nil {
			return nil, err
		}
		for i := 0; i < g.Count; i++ {
			n := newNode(len(s.nodes), ti, g, d, spec.Workload, spec.Seed)
			s.nominalRate += n.nominalRate
			s.nodes = append(s.nodes, n)
		}
	}
	if s.nominalRate <= 0 {
		return nil, errors.New("fleet: fleet has zero processing capacity for this workload")
	}
	return s, nil
}

// Run executes the fleet to the horizon and returns the result. A
// simulator runs once; calling Run again returns an error.
func (s *Simulator) Run() (*Result, error) {
	if s.nodes == nil {
		return nil, errors.New("fleet: simulator already ran")
	}
	reg := telemetry.Global()
	span := reg.Tracer().Start("fleet.run").
		Arg("name", s.spec.Name).Arg("nodes", s.spec.NodeCount())
	defer span.End()
	reg.Counter("fleet.runs").Inc()

	var log []ChaosRecord
	record := func(r ChaosRecord) { log = append(log, r) }

	// Seed the engines: heartbeats and chaos streams per node, timed
	// scenario events and the fleet power sampler on the coordinator.
	for _, n := range s.nodes {
		n.scheduleHeartbeat(s.slice)
		s.armChaos(n, record)
	}
	s.scheduleTimedEvents(record)
	s.schedulePowerSampler()
	s.rebalance(0)

	// The shared-clock loop: engine 0 is the coordinator, engines 1..N
	// the nodes. Repeatedly advance the engine whose next event is
	// earliest; ties break by engine index, making the interleaving a
	// pure function of the spec.
	engines := make([]stepEngine, 0, len(s.nodes)+1)
	engines = append(engines, stepEngine{eng: s.coord})
	for _, n := range s.nodes {
		engines = append(engines, stepEngine{eng: n.eng})
	}
	s.heap.init(engines)

	events := uint64(0)
	for {
		idx, t, ok := s.heap.min()
		if !ok || t > s.horizon {
			break
		}
		engines[idx].eng.ProcessNextEvent()
		events++
		// Only the processed engine may have changed its own queue:
		// actions schedule exclusively on the engine that runs them.
		s.heap.fix(idx)
	}

	// Close the books at the horizon.
	for _, n := range s.nodes {
		n.advanceTo(s.horizon)
	}
	s.integrateFlows(s.horizon)

	res := s.summarize(events)
	res.ChaosLog = log
	res.PowerTrace = s.powerSample
	s.nodes = nil
	return res, nil
}

// stepEngine pairs an engine with its heap bookkeeping.
type stepEngine struct {
	eng *des.Engine
}

// engineHeap is an indexed min-heap over engines keyed by next event
// time, ties broken by engine index. Engines with no pending events
// leave the heap and re-enter on fix if they gained events.
type engineHeap struct {
	engines []stepEngine
	keys    []float64 // next event time per heap slot
	idx     []int     // heap slot -> engine index
	pos     []int     // engine index -> heap slot (-1 when absent)
}

func (h *engineHeap) init(engines []stepEngine) {
	h.engines = engines
	h.keys = h.keys[:0]
	h.idx = h.idx[:0]
	h.pos = make([]int, len(engines))
	for i := range h.pos {
		h.pos[i] = -1
	}
	for i := range engines {
		if t, ok := engines[i].eng.PeekNextEventTime(); ok {
			h.pos[i] = len(h.idx)
			h.keys = append(h.keys, t)
			h.idx = append(h.idx, i)
		}
	}
	heap.Init(h)
}

func (h *engineHeap) Len() int { return len(h.idx) }
func (h *engineHeap) Less(i, j int) bool {
	if h.keys[i] != h.keys[j] {
		return h.keys[i] < h.keys[j]
	}
	return h.idx[i] < h.idx[j]
}
func (h *engineHeap) Swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
	h.pos[h.idx[i]] = i
	h.pos[h.idx[j]] = j
}
func (h *engineHeap) Push(x any) {
	i := x.(int)
	t, _ := h.engines[i].eng.PeekNextEventTime()
	h.pos[i] = len(h.idx)
	h.keys = append(h.keys, t)
	h.idx = append(h.idx, i)
}
func (h *engineHeap) Pop() any {
	n := len(h.idx) - 1
	i := h.idx[n]
	h.pos[i] = -1
	h.idx = h.idx[:n]
	h.keys = h.keys[:n]
	return i
}

// min returns the engine index and key of the earliest pending event.
func (h *engineHeap) min() (int, float64, bool) {
	if len(h.idx) == 0 {
		return 0, 0, false
	}
	return h.idx[0], h.keys[0], true
}

// fix re-reads engine i's next event time and restores heap order,
// inserting or removing the engine as its queue filled or drained.
func (h *engineHeap) fix(i int) {
	t, ok := h.engines[i].eng.PeekNextEventTime()
	slot := h.pos[i]
	switch {
	case ok && slot >= 0:
		h.keys[slot] = t
		heap.Fix(h, slot)
	case ok && slot < 0:
		heap.Push(h, i)
	case !ok && slot >= 0:
		// Drained: remove by swapping to the end.
		n := len(h.idx) - 1
		h.Swap(slot, n)
		h.pos[i] = -1
		h.idx = h.idx[:n]
		h.keys = h.keys[:n]
		if slot < n {
			heap.Fix(h, slot)
		}
	}
}

// rebalance redistributes the offered load over the currently alive
// capacity, rate-matched exactly as the paper's static mapping: every
// alive node runs at the same fraction of its own (possibly degraded)
// capacity, so all absorb the chaos proportionally. Must be called with
// every node's accounting already advanced to now.
func (s *Simulator) rebalance(now float64) {
	offered := s.utilization * s.nominalRate
	aliveCap := 0.0
	alive := 0
	for _, n := range s.nodes {
		aliveCap += n.capacity()
		if !n.failed {
			alive++
		}
	}
	scale := 0.0
	if aliveCap > 0 {
		scale = offered / aliveCap
		if scale > 1 {
			scale = 1
		}
	}
	for _, n := range s.nodes {
		n.setLoad(scale)
	}
	s.integrateFlows(now)
	s.offeredRate = offered
	s.lostRate = offered - aliveCap*scale
	if s.lostRate < 0 {
		s.lostRate = 0
	}
	s.aliveGauge.Set(float64(alive))
}

// advanceAll brings every node's lazy accounting to now; required
// before any state change that alters load distribution.
func (s *Simulator) advanceAll(now float64) {
	for _, n := range s.nodes {
		n.advanceTo(now)
	}
}

// integrateFlows accrues the offered and lost work integrals at the
// current rates up to now.
func (s *Simulator) integrateFlows(now float64) {
	if dt := now - s.flowLastT; dt > 0 {
		s.offeredUnits.Add(s.offeredRate * dt)
		s.lostUnits.Add(s.lostRate * dt)
	}
	s.flowLastT = now
}

// schedulePowerSampler samples fleet-wide power draw every slice on the
// coordinator engine, tracking the peak and an optional trace. The
// trace is capped so multi-day scenarios cannot exhaust memory.
func (s *Simulator) schedulePowerSampler() {
	const maxSamples = 100000
	var sample func()
	sample = func() {
		now := s.coord.Now()
		total := 0.0
		alive := 0
		for _, n := range s.nodes {
			total += n.power
			if !n.failed {
				alive++
			}
		}
		if total > s.peakPower {
			s.peakPower = total
		}
		s.powerGauge.Set(total)
		if len(s.powerSample) < maxSamples {
			s.powerSample = append(s.powerSample, PowerSample{Time: now, Power: total, Alive: alive})
		}
		if s.spec.Latency != nil {
			aliveCap := 0.0
			for _, n := range s.nodes {
				aliveCap += n.capacity()
			}
			s.sampleLatency(aliveCap, alive)
		}
		if next := now + s.slice; next <= s.horizon {
			if _, err := s.coord.Schedule(s.slice, sample); err != nil {
				panic(err)
			}
		}
	}
	if _, err := s.coord.Schedule(0, sample); err != nil {
		panic(err)
	}
}

// sampleLatency runs the analytic tail-latency probe at one power
// sample. The fleet is modeled as a single queue whose aggregate
// service rate is the alive capacity, loaded with the offered rate; a
// fleet that cannot carry the offered load (rho >= 1, or no capacity
// at all) counts a saturated sample instead of a latency. Utilization
// is quantized so steady stretches of a run resolve through the shared
// kernel percentile cache rather than re-running the solver, keeping
// the probe a pure deterministic function of fleet state.
func (s *Simulator) sampleLatency(aliveCap float64, alive int) {
	ls := s.spec.Latency
	if aliveCap <= 0 {
		s.latencySaturated++
		return
	}
	rho := math.Round(s.utilization*s.nominalRate/aliveCap*1e4) / 1e4
	if rho >= 1 {
		s.latencySaturated++
		return
	}
	if rho < 1e-4 {
		rho = 1e-4 // kernels need an open arrival stream; floor near-idle fleets
	}
	spec := ls.Kernel
	if spec.Kind == queueing.KindMMK && spec.Servers == 0 {
		if alive < 1 {
			s.latencySaturated++
			return
		}
		spec.Servers = alive
	}
	k, err := spec.Build(rho, 1/aliveCap)
	if err != nil {
		s.latencySaturated++
		return
	}
	t, err := k.ResponsePercentile(ls.percentile())
	if err != nil {
		s.latencySaturated++
		return
	}
	s.latencySamples++
	s.latencySum.Add(t)
	if t > s.latencyMax {
		s.latencyMax = t
	}
}
