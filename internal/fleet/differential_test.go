package fleet

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/powermeter"
	"repro/internal/simulator"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestDifferentialSingleNodeVsModel: a one-node fleet at utilization 1
// run for exactly the model's job time must complete the job's units
// and spend the model's energy. The fleet integrates steady-state
// derivatives where the model evaluates a closed form, so agreement is
// expected to round-off, not approximation, tolerance.
func TestDifferentialSingleNodeVsModel(t *testing.T) {
	catalog, registry := testEnv(t)
	for _, typeName := range []string{"A9", "K10"} {
		nt, err := catalog.Lookup(typeName)
		if err != nil {
			t.Fatal(err)
		}
		for _, wlName := range []string{"EP", "x264"} {
			wl, err := registry.Lookup(wlName)
			if err != nil {
				t.Fatal(err)
			}
			g := cluster.FullNodes(nt, 1)
			mres, err := model.Evaluate(cluster.MustConfig(g), wl, model.Options{})
			if err != nil {
				t.Fatal(err)
			}

			spec := Spec{
				Name:        "diff",
				Workload:    wl,
				Templates:   []cluster.Group{g},
				Duration:    mres.Time,
				Slice:       units.Seconds(float64(mres.Time) / 16),
				Utilization: 1,
				Seed:        1,
			}
			s := runSpec(t, spec).Summary

			if e := relErr(s.CompletedUnits, wl.JobUnits); e > 1e-9 {
				t.Errorf("%s/%s: fleet completed %g units over the model time, want %g (rel err %g)",
					typeName, wlName, s.CompletedUnits, wl.JobUnits, e)
			}
			if e := relErr(s.EnergyJoules, float64(mres.Energy)); e > 1e-9 {
				t.Errorf("%s/%s: fleet energy %g J, model %g J (rel err %g)",
					typeName, wlName, s.EnergyJoules, float64(mres.Energy), e)
			}
			if e := relErr(s.AvgPowerWatts, float64(mres.BusyPower)); e > 1e-9 {
				t.Errorf("%s/%s: fleet avg power %g W, model busy power %g W (rel err %g)",
					typeName, wlName, s.AvgPowerWatts, float64(mres.BusyPower), e)
			}
		}
	}
}

// TestDifferentialHeterogeneousVsModel extends the check to a mixed
// configuration: at utilization 1 the fleet's rate-matched shares are
// the model's static mapping, so over the model's job time the fleet
// reproduces the job's units and energy.
func TestDifferentialHeterogeneousVsModel(t *testing.T) {
	catalog, registry := testEnv(t)
	a9, err := catalog.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	wl, err := registry.Lookup("EP")
	if err != nil {
		t.Fatal(err)
	}
	groups := []cluster.Group{cluster.FullNodes(a9, 8), cluster.FullNodes(k10, 2)}
	mres, err := model.Evaluate(cluster.MustConfig(groups...), wl, model.Options{})
	if err != nil {
		t.Fatal(err)
	}

	spec := Spec{
		Name:        "diff-hetero",
		Workload:    wl,
		Templates:   groups,
		Duration:    mres.Time,
		Slice:       units.Seconds(float64(mres.Time) / 16),
		Utilization: 1,
		Seed:        1,
	}
	s := runSpec(t, spec).Summary

	if e := relErr(s.CompletedUnits, wl.JobUnits); e > 1e-9 {
		t.Errorf("fleet completed %g units, want job size %g (rel err %g)",
			s.CompletedUnits, wl.JobUnits, e)
	}
	if e := relErr(s.EnergyJoules, float64(mres.Energy)); e > 1e-9 {
		t.Errorf("fleet energy %g J, model %g J (rel err %g)",
			s.EnergyJoules, float64(mres.Energy), e)
	}
}

// TestDifferentialVsSimulator cross-checks against the per-job DES
// simulator with all effects disabled. The paper workloads carry an
// intrinsic Irregularity slowdown that only the simulator applies, so
// the comparison uses a synthetic profile (Irregularity 0): with no
// stochastic terms left the simulator's makespan and exact trace energy
// must agree with the fleet run to round-off.
func TestDifferentialVsSimulator(t *testing.T) {
	catalog, _ := testEnv(t)
	a9, err := catalog.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := workload.Generate(catalog, workload.DefaultSyntheticSpec(), 1, 17)
	if err != nil {
		t.Fatal(err)
	}
	wl := profiles[0]
	g := cluster.FullNodes(a9, 1)
	meter := powermeter.Meter{SampleRate: 10} // perfect instrument
	sres, err := simulator.Run(cluster.MustConfig(g), wl, simulator.Effects{}, meter, 1)
	if err != nil {
		t.Fatal(err)
	}

	spec := Spec{
		Name:        "diff-sim",
		Workload:    wl,
		Templates:   []cluster.Group{g},
		Duration:    sres.Time,
		Slice:       units.Seconds(float64(sres.Time) / 16),
		Utilization: 1,
		Seed:        1,
	}
	s := runSpec(t, spec).Summary

	if e := relErr(s.CompletedUnits, wl.JobUnits); e > 1e-9 {
		t.Errorf("fleet completed %g units over the simulator makespan, want %g (rel err %g)",
			s.CompletedUnits, wl.JobUnits, e)
	}
	if e := relErr(s.EnergyJoules, float64(sres.TrueEnergy)); e > 1e-9 {
		t.Errorf("fleet energy %g J, simulator trace energy %g J (rel err %g)",
			s.EnergyJoules, float64(sres.TrueEnergy), e)
	}
}
