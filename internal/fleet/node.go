package fleet

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// node is one fleet member: a single machine of a template's type,
// running at the template's (cores, frequency) operating point, with
// its own discrete-event engine and chaos stream.
//
// Work and power are integrated lazily: the node keeps the current
// (power, unit-completion) derivatives and accrues energy and units on
// every state change and heartbeat. Between changes the node is in
// steady state, so the integration is exact — the heartbeat only bounds
// how stale the accumulators can get and feeds the power sampler.
type node struct {
	index    int
	template int
	group    cluster.Group
	demand   workload.Demand
	wl       *workload.Profile
	eng      *des.Engine
	rng      *stats.RNG // chaos stream, derived from (seed, index) only

	// Chaos state. The zero state is a healthy node: factor 1, no cap.
	failed          bool
	throttleFactor  float64 // effective frequency multiplier, (0, 1]
	stragglerFactor float64 // CPU-side slowdown, >= 1
	capWatts        float64 // whole-node power cap; 0 disables

	// Derived per-state quantities, recomputed by recalc.
	nominalRate   float64 // healthy full-speed capacity, units/s
	idealUnitJ    float64 // healthy energy per unit at u=1 (incl. idle share)
	unitTime      float64 // seconds per unit in the current state
	rate          float64 // 1/unitTime (0 when failed)
	idlePower     float64
	dynPower      float64 // watts above idle at full utilization
	maxU          float64 // power-cap-limited max busy fraction
	u             float64 // assigned busy fraction
	power         float64 // current draw, watts
	unitsPerSec   float64 // current completion rate
	sliceDeadline float64 // next heartbeat time (diagnostics only)

	// Accounting.
	lastT     float64
	energy    stats.KahanSum // joules
	done      stats.KahanSum // completed units
	busyTime  stats.KahanSum // node-seconds busy
	down      float64        // node-seconds failed
	failures  int
	repairs   int
	throttles int
	caps      int
	straggler bool
}

// chaosStream derives the per-node PRNG seed by FNV-1a mixing the run
// seed with the node index, so stream i is independent of how many
// nodes exist and of every other stream.
func chaosStream(seed uint64, index int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for _, b := range []byte("fleet.chaos") {
		mix(b)
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(index) >> (8 * i)))
	}
	return h
}

func newNode(index, template int, g cluster.Group, d workload.Demand, wl *workload.Profile, seed uint64) *node {
	n := &node{
		index:           index,
		template:        template,
		group:           g,
		demand:          d,
		wl:              wl,
		eng:             des.New(),
		rng:             stats.NewRNG(chaosStream(seed, index)),
		throttleFactor:  1,
		stragglerFactor: 1,
	}
	n.recalc()
	n.nominalRate = n.rate
	if n.rate > 0 {
		n.idealUnitJ = n.unitTime * (n.idlePower + n.dynPower)
	}
	return n
}

// recalc rebuilds the per-unit time and power derivatives from the
// node's chaos state. The math mirrors model.Evaluate's unitTime and
// Table 2 energy decomposition, evaluated at the throttled effective
// frequency, with the straggler slowdown stretching the CPU-side times
// the way internal/simulator stretches them (the node stays busy, so
// the power attribution keeps its activity fractions).
func (n *node) recalc() {
	g := n.group
	d := n.demand
	c := float64(g.Cores)
	f := float64(g.Freq) * n.throttleFactor
	if f <= 0 || n.failed {
		n.unitTime = math.Inf(1)
		n.rate = 0
		n.dynPower = 0
		n.idlePower = 0 // a failed node is powered off
		n.maxU = 0
		n.setLoad(0)
		return
	}

	tCore := float64(d.CoreCycles) / (c * f) * n.stragglerFactor
	tMem := float64(d.MemCycles) / f * n.stragglerFactor
	tCPU := tCore
	if tMem > tCPU {
		tCPU = tMem
	}
	tIO := float64(d.IOBytes) / float64(g.Type.NICBandwidth)
	if d.IOReqs > 0 && n.wl.IORate > 0 {
		if wait := d.IOReqs / float64(n.wl.IORate); wait > tIO {
			tIO = wait
		}
	}
	unit := tCPU
	if tIO > unit {
		unit = tIO
	}
	if unit <= 0 {
		unit = 1e-12
	}
	tStall := tMem - tCore
	if tStall < 0 {
		tStall = 0
	}

	p := g.Type.PowerAt(units.Hertz(f))
	dynJ := d.Intensity*float64(p.CPUActPerCore)*c*tCore +
		float64(p.CPUStallPerCore)*c*tStall +
		float64(p.Mem)*tMem +
		float64(p.Net)*tIO

	n.unitTime = unit
	n.rate = 1 / unit
	n.idlePower = float64(p.Idle)
	n.dynPower = dynJ / unit

	// A power cap limits the busy fraction the node may sustain: the
	// dynamic headroom above idle is clamped at (cap - idle). A cap at
	// or below idle stops work entirely but the idle draw remains — the
	// node cannot dip below its floor without powering off.
	n.maxU = 1
	if n.capWatts > 0 && n.dynPower > 0 {
		headroom := (n.capWatts - n.idlePower) / n.dynPower
		if headroom < 0 {
			headroom = 0
		}
		if headroom < 1 {
			n.maxU = headroom
		}
	}
	if n.u > n.maxU {
		n.u = n.maxU
	}
	n.setLoad(n.loadScale())
}

// loadScale recovers the fleet-wide scale from the node's current
// assignment so recalc can preserve it; setLoad applies a new one.
func (n *node) loadScale() float64 {
	if n.maxU <= 0 {
		return 0
	}
	return n.u / n.maxU
}

// setLoad assigns the fleet-wide load scale: the node runs at scale of
// its own (possibly degraded) capacity, the rate-matched share.
func (n *node) setLoad(scale float64) {
	if n.failed {
		n.u = 0
		n.power = 0
		n.unitsPerSec = 0
		return
	}
	n.u = n.maxU * scale
	n.power = n.idlePower + n.u*n.dynPower
	n.unitsPerSec = n.u * n.rate
}

// capacity is the node's current sustainable completion rate.
func (n *node) capacity() float64 {
	if n.failed {
		return 0
	}
	return n.rate * n.maxU
}

// advanceTo integrates the steady-state derivatives from the last
// update to now.
func (n *node) advanceTo(now float64) {
	dt := now - n.lastT
	if dt <= 0 {
		return
	}
	n.lastT = now
	if n.failed {
		n.down += dt
		return
	}
	n.energy.Add(n.power * dt)
	n.done.Add(n.unitsPerSec * dt)
	n.busyTime.Add(n.u * dt)
}

// scheduleHeartbeat starts the node's recurring heartbeat: advance the
// lazy accounting every slice so accumulators stay fresh and the power
// sampler reads a current draw. The stream is unbounded; the fleet's
// run loop stops consuming it at the horizon.
func (n *node) scheduleHeartbeat(slice float64) {
	var beat func()
	beat = func() {
		n.advanceTo(n.eng.Now())
		n.sliceDeadline = n.eng.Now() + slice
		if _, err := n.eng.Schedule(slice, beat); err != nil {
			panic(err)
		}
	}
	if _, err := n.eng.Schedule(slice, beat); err != nil {
		panic(err)
	}
}
