package fleet

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/queueing"
)

// latency_test.go covers the analytic tail-latency probe: the summary
// bytes without a probe are untouched, a steady fleet matches the
// kernel computed directly, heavier-tailed kernels probe higher, chaos
// moves the max above the mean, saturation is counted rather than
// faked, and the probe preserves the determinism contract.

// TestLatencyProbeAbsentByDefault: a spec without Latency must not
// leak any probe field into the marshaled summary — the byte-compat
// guarantee existing goldens and differential baselines rely on.
func TestLatencyProbeAbsentByDefault(t *testing.T) {
	res := runSpec(t, testSpec(t, "EP", 0.6, 60))
	raw, err := json.Marshal(res.Summary)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "latency") {
		t.Fatalf("probe-free summary grew latency fields: %s", raw)
	}
	if res.Summary.LatencyKernel != "" || res.Summary.TailLatencySeconds != 0 {
		t.Fatalf("probe-free summary has probe values: %+v", res.Summary)
	}
}

// TestLatencyProbeSteadyState: in a clean constant-load run every
// sample sees the same fleet, so max == avg, nothing saturates, and
// the value is exactly the kernel's percentile at the fleet's
// utilization and aggregate service time.
func TestLatencyProbeSteadyState(t *testing.T) {
	spec := testSpec(t, "EP", 0.6, 60)
	spec.Latency = &LatencySpec{}
	sim, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	rate := sim.nominalRate
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.LatencyKernel != "md1" || s.LatencyPercentile != 95 {
		t.Fatalf("probe labels = %q p%g, want md1 p95", s.LatencyKernel, s.LatencyPercentile)
	}
	if s.LatencySaturatedSamples != 0 {
		t.Fatalf("steady run saturated %d samples", s.LatencySaturatedSamples)
	}
	if s.TailLatencySeconds <= 0 || math.Abs(s.TailLatencySeconds-s.AvgTailLatencySeconds) > 1e-12 {
		t.Fatalf("steady run max %g != avg %g", s.TailLatencySeconds, s.AvgTailLatencySeconds)
	}
	k, err := queueing.DefaultSpec().Build(0.6, 1/rate)
	if err != nil {
		t.Fatal(err)
	}
	want, err := k.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.TailLatencySeconds-want) > 1e-12*want {
		t.Fatalf("probe %g, direct kernel %g", s.TailLatencySeconds, want)
	}
}

// TestLatencyProbeKernelOrdering: at the same load, heavier-tailed
// service must probe a longer tail — mg1(scv=4) above md1 — and the
// probed percentiles must be monotone in p.
func TestLatencyProbeKernelOrdering(t *testing.T) {
	probe := func(ls *LatencySpec) float64 {
		t.Helper()
		spec := testSpec(t, "EP", 0.7, 30)
		spec.Latency = ls
		return runSpec(t, spec).Summary.TailLatencySeconds
	}
	md1 := probe(&LatencySpec{})
	mg1 := probe(&LatencySpec{Kernel: queueing.Spec{Kind: queueing.KindMG1, SCV: 4}})
	if !(mg1 > md1) {
		t.Fatalf("mg1(scv=4) probe %g not above md1 %g", mg1, md1)
	}
	p50 := probe(&LatencySpec{Percentile: 50})
	p99 := probe(&LatencySpec{Percentile: 99})
	if !(p50 < md1 && md1 < p99) {
		t.Fatalf("percentiles not monotone: p50 %g, p95 %g, p99 %g", p50, md1, p99)
	}
}

// TestLatencyProbeAliveCountMMK: the Servers == 0 M/M/k spec pools the
// alive node count; it must validate, run, and label itself.
func TestLatencyProbeAliveCountMMK(t *testing.T) {
	spec := testSpec(t, "EP", 0.6, 30)
	spec.Latency = &LatencySpec{Kernel: queueing.Spec{Kind: queueing.KindMMK}}
	s := runSpec(t, spec).Summary
	if s.LatencyKernel != "mmk(k=alive)" {
		t.Fatalf("label %q, want mmk(k=alive)", s.LatencyKernel)
	}
	if s.TailLatencySeconds <= 0 || s.LatencySaturatedSamples != 0 {
		t.Fatalf("alive-count mmk probe: %+v", s)
	}
}

// TestLatencyProbeUnderChaos: failing half the A9 slab mid-run raises
// the tail above the steady value (max > avg) without saturating a
// moderately loaded fleet; offering more than the degraded fleet can
// carry must count saturated samples instead of inventing a latency.
func TestLatencyProbeUnderChaos(t *testing.T) {
	spec := testSpec(t, "EP", 0.6, 60)
	spec.Latency = &LatencySpec{}
	spec.Events = []TimedEvent{{
		At: 20, Action: ActionFail, Target: Target{Type: "A9", Count: 4, Node: AllNodes},
	}}
	s := runSpec(t, spec).Summary
	if !(s.TailLatencySeconds > s.AvgTailLatencySeconds) {
		t.Fatalf("chaos did not move the tail: max %g, avg %g",
			s.TailLatencySeconds, s.AvgTailLatencySeconds)
	}
	if s.LatencySaturatedSamples != 0 {
		t.Fatalf("moderate load saturated %d samples", s.LatencySaturatedSamples)
	}

	hot := testSpec(t, "EP", 0.95, 60)
	hot.Latency = &LatencySpec{}
	hot.Events = []TimedEvent{{
		At: 20, Action: ActionFail, Target: Target{Type: "A9", Count: 6, Node: AllNodes},
	}}
	hs := runSpec(t, hot).Summary
	if hs.LatencySaturatedSamples == 0 {
		t.Fatal("overloaded degraded fleet reported no saturated samples")
	}
	if hs.LostUnits <= 0 {
		t.Fatalf("saturated fleet lost no work: %+v", hs)
	}
}

// TestLatencyProbeDeterminism: the probe is part of the determinism
// contract — two runs of the same spec marshal bitwise-identically.
func TestLatencyProbeDeterminism(t *testing.T) {
	make := func() Spec {
		spec := testSpec(t, "EP", 0.8, 45)
		spec.Latency = &LatencySpec{Kernel: queueing.Spec{Kind: queueing.KindMG1, SCV: 2}, Percentile: 99}
		spec.Chaos = Chaos{Enabled: true, MTBF: 40, MTTR: 10}
		return spec
	}
	a, err := json.Marshal(runSpec(t, make()).Summary)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(runSpec(t, make()).Summary)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("summaries differ:\n%s\n%s", a, b)
	}
}

// TestLatencySpecValidation pins the error surface.
func TestLatencySpecValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		ls   LatencySpec
		want string
	}{
		{"bad percentile", LatencySpec{Percentile: 100}, "outside [0, 100)"},
		{"scv on md1", LatencySpec{Kernel: queueing.Spec{SCV: 1}}, "scv applies"},
		{"negative scv", LatencySpec{Kernel: queueing.Spec{Kind: queueing.KindMG1, SCV: -1}}, "must be finite"},
	} {
		err := tc.ls.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want containing %q", tc.name, err, tc.want)
		}
	}
	ok := LatencySpec{Kernel: queueing.Spec{Kind: queueing.KindMMK}} // alive-count pool
	if err := ok.Validate(); err != nil {
		t.Errorf("alive-count mmk rejected: %v", err)
	}
	spec := testSpec(t, "EP", 0.5, 10)
	spec.Latency = &LatencySpec{Percentile: -1}
	if _, err := New(spec); err == nil {
		t.Error("Spec.Validate did not reach the latency spec")
	}
}
