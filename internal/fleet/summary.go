package fleet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Result is the full outcome of one fleet run.
type Result struct {
	// Summary is the JSON-able aggregate. Two runs of the same Spec
	// marshal to byte-identical summaries.
	Summary Summary
	// ChaosLog lists every injected chaos and scenario event in
	// execution order.
	ChaosLog []ChaosRecord
	// PowerTrace holds the fleet-wide power samples, one per slice
	// (capped; long runs keep the earliest samples).
	PowerTrace []PowerSample
}

// Summary aggregates one fleet run. All floats are plain SI scalars so
// the struct marshals deterministically.
type Summary struct {
	Name     string `json:"name"`
	Workload string `json:"workload"`
	Seed     uint64 `json:"seed"`
	Nodes    int    `json:"nodes"`
	// DurationSeconds is the virtual horizon.
	DurationSeconds float64 `json:"duration_seconds"`
	// Events counts discrete events processed across all engines.
	Events uint64 `json:"events"`

	// Work accounting. Offered = Completed + Lost up to float error.
	OfferedUnits   float64 `json:"offered_units"`
	CompletedUnits float64 `json:"completed_units"`
	LostUnits      float64 `json:"lost_units"`

	// Energy accounting. IdealEnergyJoules is the perfectly-
	// proportional floor: every completed unit charged its node's
	// healthy full-utilization energy (busy dynamic power plus the idle
	// share while busy) and nothing else — no idle waste, no chaos
	// overhead. EnergyProportionality = Ideal/Actual in (0, 1]; 1 means
	// the fleet spent energy exactly proportional to completed work.
	EnergyJoules          float64 `json:"energy_joules"`
	EnergyPerUnitJoules   float64 `json:"energy_per_unit_joules"`
	IdealEnergyJoules     float64 `json:"ideal_energy_joules"`
	EnergyProportionality float64 `json:"energy_proportionality"`
	AvgPowerWatts         float64 `json:"avg_power_watts"`
	PeakPowerWatts        float64 `json:"peak_power_watts"`

	// Chaos accounting.
	Failures        int     `json:"failures"`
	Repairs         int     `json:"repairs"`
	ThrottleEvents  int     `json:"throttle_events"`
	PowerCapEvents  int     `json:"powercap_events"`
	Stragglers      int     `json:"stragglers"`
	DownNodeSeconds float64 `json:"down_node_seconds"`
	// Availability is 1 - down-node-seconds / (nodes * duration).
	Availability float64 `json:"availability"`

	// Tail-latency probe (Spec.Latency). All fields are omitempty so
	// runs without the probe keep byte-identical summaries.
	// LatencyKernel names the queueing kernel ("md1", "mg1(scv=4)",
	// "mmk(k=alive)"); TailLatencySeconds is the worst sampled p-th
	// percentile response time over the run, AvgTailLatencySeconds the
	// mean over non-saturated samples, and LatencySaturatedSamples the
	// number of samples where the alive fleet could not carry the
	// offered load (rho >= 1).
	LatencyKernel           string  `json:"latency_kernel,omitempty"`
	LatencyPercentile       float64 `json:"latency_percentile,omitempty"`
	TailLatencySeconds      float64 `json:"tail_latency_seconds,omitempty"`
	AvgTailLatencySeconds   float64 `json:"avg_tail_latency_seconds,omitempty"`
	LatencySaturatedSamples int     `json:"latency_saturated_samples,omitempty"`

	PerType []TypeSummary `json:"per_type"`
}

// TypeSummary is the per-node-type slice of the aggregate, sorted by
// type name.
type TypeSummary struct {
	Type            string  `json:"type"`
	Nodes           int     `json:"nodes"`
	CompletedUnits  float64 `json:"completed_units"`
	EnergyJoules    float64 `json:"energy_joules"`
	Failures        int     `json:"failures"`
	DownNodeSeconds float64 `json:"down_node_seconds"`
}

// Metric exposes summary fields by assertion name. The names are the
// JSON tags of the scalar fields; docs/SCENARIOS.md documents the set.
func (s *Summary) Metric(name string) (float64, bool) {
	switch name {
	case "duration_seconds":
		return s.DurationSeconds, true
	case "nodes":
		return float64(s.Nodes), true
	case "events":
		return float64(s.Events), true
	case "offered_units":
		return s.OfferedUnits, true
	case "completed_units":
		return s.CompletedUnits, true
	case "lost_units":
		return s.LostUnits, true
	case "energy_joules":
		return s.EnergyJoules, true
	case "energy_per_unit_joules":
		return s.EnergyPerUnitJoules, true
	case "ideal_energy_joules":
		return s.IdealEnergyJoules, true
	case "energy_proportionality":
		return s.EnergyProportionality, true
	case "avg_power_watts":
		return s.AvgPowerWatts, true
	case "peak_power_watts":
		return s.PeakPowerWatts, true
	case "failures":
		return float64(s.Failures), true
	case "repairs":
		return float64(s.Repairs), true
	case "throttle_events":
		return float64(s.ThrottleEvents), true
	case "powercap_events":
		return float64(s.PowerCapEvents), true
	case "stragglers":
		return float64(s.Stragglers), true
	case "down_node_seconds":
		return s.DownNodeSeconds, true
	case "availability":
		return s.Availability, true
	case "tail_latency_seconds":
		return s.TailLatencySeconds, true
	case "avg_tail_latency_seconds":
		return s.AvgTailLatencySeconds, true
	case "latency_saturated_samples":
		return float64(s.LatencySaturatedSamples), true
	}
	return 0, false
}

// MetricNames lists the assertable summary fields, sorted.
func MetricNames() []string {
	names := []string{
		"duration_seconds", "nodes", "events",
		"offered_units", "completed_units", "lost_units",
		"energy_joules", "energy_per_unit_joules", "ideal_energy_joules",
		"energy_proportionality", "avg_power_watts", "peak_power_watts",
		"failures", "repairs", "throttle_events", "powercap_events",
		"stragglers", "down_node_seconds", "availability",
		"tail_latency_seconds", "avg_tail_latency_seconds",
		"latency_saturated_samples",
	}
	sort.Strings(names)
	return names
}

// String renders the summary as the epfleet text report.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet %s: %d nodes, workload %s, %s virtual, seed %d\n",
		s.Name, s.Nodes, s.Workload, fmtSeconds(s.DurationSeconds), s.Seed)
	for _, ts := range s.PerType {
		fmt.Fprintf(&b, "  %-8s %5d nodes   %12.4g units   %10.4g J   %d failures, %s down\n",
			ts.Type, ts.Nodes, ts.CompletedUnits, ts.EnergyJoules, ts.Failures, fmtSeconds(ts.DownNodeSeconds))
	}
	fmt.Fprintf(&b, "  work    offered %.6g   completed %.6g   lost %.6g (%.2f%%)\n",
		s.OfferedUnits, s.CompletedUnits, s.LostUnits, 100*safeDiv(s.LostUnits, s.OfferedUnits))
	fmt.Fprintf(&b, "  energy  %.6g J   %.6g J/unit   avg %.4g W   peak %.4g W\n",
		s.EnergyJoules, s.EnergyPerUnitJoules, s.AvgPowerWatts, s.PeakPowerWatts)
	fmt.Fprintf(&b, "  EP      proportionality %.4f   (ideal %.6g J)\n",
		s.EnergyProportionality, s.IdealEnergyJoules)
	fmt.Fprintf(&b, "  chaos   %d failures, %d repairs, %d throttles, %d power caps, %d stragglers\n",
		s.Failures, s.Repairs, s.ThrottleEvents, s.PowerCapEvents, s.Stragglers)
	if s.LatencyKernel != "" {
		fmt.Fprintf(&b, "  latency p%g %s   max %.4gs   avg %.4gs   %d saturated samples\n",
			s.LatencyPercentile, s.LatencyKernel,
			s.TailLatencySeconds, s.AvgTailLatencySeconds, s.LatencySaturatedSamples)
	}
	fmt.Fprintf(&b, "  uptime  availability %.4f   %s node-downtime   %d events\n",
		s.Availability, fmtSeconds(s.DownNodeSeconds), s.Events)
	return b.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fmtSeconds(sec float64) string {
	switch {
	case sec >= 3600:
		return fmt.Sprintf("%.4gh", sec/3600)
	case sec >= 60:
		return fmt.Sprintf("%.4gm", sec/60)
	default:
		return fmt.Sprintf("%.4gs", sec)
	}
}

// summarize folds the per-node accounting into the Summary. Iteration
// is in node-index order and type rows are sorted by name, so the
// result is a pure function of the spec.
func (s *Simulator) summarize(events uint64) *Result {
	sum := Summary{
		Name:            s.spec.Name,
		Workload:        s.spec.Workload.Name,
		Seed:            s.spec.Seed,
		Nodes:           len(s.nodes),
		DurationSeconds: s.horizon,
		Events:          events,
		PeakPowerWatts:  s.peakPower,
		LostUnits:       s.lostUnits.Sum(),
		Failures:        s.counters.failures,
		Repairs:         s.counters.repairs,
		ThrottleEvents:  s.counters.throttles,
		PowerCapEvents:  s.counters.caps,
		Stragglers:      s.counters.stragglers,
	}
	if ls := s.spec.Latency; ls != nil {
		sum.LatencyKernel = ls.kernelLabel()
		sum.LatencyPercentile = ls.percentile()
		sum.TailLatencySeconds = s.latencyMax
		sum.LatencySaturatedSamples = s.latencySaturated
		if s.latencySamples > 0 {
			sum.AvgTailLatencySeconds = s.latencySum.Sum() / float64(s.latencySamples)
		}
	}

	var energy, done, ideal, down stats.KahanSum
	byType := make(map[string]*TypeSummary)
	order := []string{}
	for _, n := range s.nodes {
		e := n.energy.Sum()
		u := n.done.Sum()
		energy.Add(e)
		done.Add(u)
		ideal.Add(u * n.idealUnitJ)
		down.Add(n.down)

		name := n.group.Type.Name
		ts := byType[name]
		if ts == nil {
			ts = &TypeSummary{Type: name}
			byType[name] = ts
			order = append(order, name)
		}
		ts.Nodes++
		ts.CompletedUnits += u
		ts.EnergyJoules += e
		ts.Failures += n.failures
		ts.DownNodeSeconds += n.down
	}
	sum.EnergyJoules = energy.Sum()
	sum.CompletedUnits = done.Sum()
	sum.OfferedUnits = s.offeredUnits.Sum()
	sum.IdealEnergyJoules = ideal.Sum()
	sum.DownNodeSeconds = down.Sum()
	if sum.CompletedUnits > 0 {
		sum.EnergyPerUnitJoules = sum.EnergyJoules / sum.CompletedUnits
	}
	if sum.EnergyJoules > 0 {
		sum.EnergyProportionality = sum.IdealEnergyJoules / sum.EnergyJoules
	}
	if s.horizon > 0 {
		sum.AvgPowerWatts = sum.EnergyJoules / s.horizon
		if n := float64(len(s.nodes)); n > 0 {
			sum.Availability = 1 - sum.DownNodeSeconds/(n*s.horizon)
		}
	}

	sort.Strings(order)
	for _, name := range order {
		sum.PerType = append(sum.PerType, *byType[name])
	}
	return &Result{Summary: sum}
}
