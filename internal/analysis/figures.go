package analysis

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/pareto"
	"repro/internal/report"
	"repro/internal/stats"
)

// idealSeries returns the ideal energy-proportionality line on the grid
// (power fraction equals utilization).
func idealSeries(grid []float64) report.Series {
	y := make([]float64, len(grid))
	for i, u := range grid {
		y[i] = 100 * u
	}
	x := make([]float64, len(grid))
	for i, u := range grid {
		x[i] = 100 * u
	}
	return report.Series{Label: "Ideal", X: x, Y: y}
}

// toPercentGrid converts a fraction grid to percent for figure axes.
func toPercentGrid(grid []float64) []float64 {
	x := make([]float64, len(grid))
	for i, u := range grid {
		x[i] = 100 * u
	}
	return x
}

// Figure2 generates the conceptual metric-relationship curves of
// Figure 2: the ideal line plus synthetic super-linear and sub-linear
// servers, with their computed metrics in the labels.
func Figure2() []report.Series {
	grid := stats.Linspace(0, 1, 101)
	super := make([]float64, len(grid))
	sub := make([]float64, len(grid))
	for i, u := range grid {
		// A convex/concave pair sharing idle 30% and peak 100%.
		super[i] = 30 + 70*math.Sqrt(u)
		sub[i] = 30 + 70*u*u
	}
	mkSeries := func(label string, p []float64) report.Series {
		c, err := energyprop.NewCurve(grid, p)
		if err != nil {
			panic(err)
		}
		m := energyprop.ComputeMetrics(c)
		return report.Series{
			Label: fmt.Sprintf("%s (IPR=%.2f EPM=%.2f chordLDR=%+.2f)", label, m.IPR, m.EPM, m.ChordLDR),
			X:     toPercentGrid(grid),
			Y:     p,
		}
	}
	return []report.Series{
		idealSeries(grid),
		mkSeries("super-linear", super),
		mkSeries("sub-linear", sub),
	}
}

// Figure5 returns the single-node energy-proportionality curves
// (percent of peak power versus utilization) for one workload on A9 and
// K10, plus the ideal line — Figures 5a-5c use EP, x264, blackscholes.
func (s *Suite) Figure5(wl string) ([]report.Series, error) {
	grid := utilGrid()
	series := []report.Series{idealSeries(grid)}
	for _, nodeName := range []string{"K10", "A9"} {
		node, err := s.node(nodeName)
		if err != nil {
			return nil, err
		}
		cfg, err := cluster.NewConfig(cluster.FullNodes(node, 1))
		if err != nil {
			return nil, err
		}
		a, err := s.analyze(cfg, wl)
		if err != nil {
			return nil, err
		}
		y := a.Sweep(grid, func(u float64) float64 { return 100 * a.NormalizedPowerAt(u) })
		series = append(series, report.Series{Label: nodeName, X: toPercentGrid(grid), Y: y})
	}
	return series, nil
}

// Figure6 returns the single-node PPR-versus-utilization curves for one
// workload (Figures 6a-6c).
func (s *Suite) Figure6(wl string) ([]report.Series, error) {
	grid := utilGrid()
	var series []report.Series
	for _, nodeName := range []string{"K10", "A9"} {
		node, err := s.node(nodeName)
		if err != nil {
			return nil, err
		}
		cfg, err := cluster.NewConfig(cluster.FullNodes(node, 1))
		if err != nil {
			return nil, err
		}
		a, err := s.analyze(cfg, wl)
		if err != nil {
			return nil, err
		}
		y := a.Sweep(grid, a.PPRAt)
		series = append(series, report.Series{Label: nodeName, X: toPercentGrid(grid), Y: y})
	}
	return series, nil
}

// ladderSeries evaluates one figure quantity across the 1 kW budget
// ladder mixes.
func (s *Suite) ladderSeries(wl string, f func(*energyprop.Analysis, float64) float64) ([]report.Series, error) {
	spec, err := cluster.DefaultBudget(s.Catalog)
	if err != nil {
		return nil, err
	}
	ladder, err := spec.Ladder()
	if err != nil {
		return nil, err
	}
	grid := utilGrid()
	var series []report.Series
	for _, m := range ladder {
		a, err := s.analyze(m.Config, wl)
		if err != nil {
			return nil, err
		}
		y := a.Sweep(grid, func(u float64) float64 { return f(a, u) })
		series = append(series, report.Series{
			Label: fmt.Sprintf("%d A9: %d K10", m.Wimpy, m.Brawny),
			X:     toPercentGrid(grid),
			Y:     y,
		})
	}
	return series, nil
}

// Figure7 returns the cluster-wide energy-proportionality curves of the
// budget ladder for one workload (the paper plots EP), plus the ideal.
func (s *Suite) Figure7(wl string) ([]report.Series, error) {
	series, err := s.ladderSeries(wl, func(a *energyprop.Analysis, u float64) float64 {
		return 100 * a.NormalizedPowerAt(u)
	})
	if err != nil {
		return nil, err
	}
	return append([]report.Series{idealSeries(utilGrid())}, series...), nil
}

// Figure8 returns the cluster-wide PPR curves of the budget ladder.
func (s *Suite) Figure8(wl string) ([]report.Series, error) {
	return s.ladderSeries(wl, (*energyprop.Analysis).PPRAt)
}

// ParetoFigure holds the Figure 9/10 outputs: the energy-proportionality
// curves of Pareto-frontier configurations normalized against the
// reference (maximum) configuration, plus which of them are sub-linear.
type ParetoFigure struct {
	Workload string
	// Reference is the maximum configuration whose peak power anchors
	// the ideal line.
	Reference cluster.Config
	// Series are the normalized power curves (percent of reference
	// peak), first entry the ideal line.
	Series []report.Series
	// Frontier holds the frontier points plotted.
	Frontier []pareto.Point
	// Sublinear flags, aligned with Frontier, mark configurations that
	// fall below the ideal line somewhere on the grid.
	Sublinear []bool
}

// FigurePareto computes the Figure 9/10 analysis for one workload over
// the <=32 A9 + <=12 K10 mix space (all cores at maximum frequency,
// matching the figure labels which vary only node counts). maxCurves
// bounds how many frontier configurations are plotted alongside the
// reference; the most and least powerful frontier points are kept.
func (s *Suite) FigurePareto(wl string, maxCurves int) (*ParetoFigure, error) {
	arm, err := s.node("A9")
	if err != nil {
		return nil, err
	}
	amd, err := s.node("K10")
	if err != nil {
		return nil, err
	}
	p, err := s.profile(wl)
	if err != nil {
		return nil, err
	}
	limits := []cluster.Limit{
		{Type: arm, MaxNodes: 32, FixCoresAndFreq: true},
		{Type: amd, MaxNodes: 12, FixCoresAndFreq: true},
	}
	frontier, err := pareto.FrontierSweep(limits, p, s.Opt, pareto.SweepOptions{
		Workers:  s.Workers,
		Progress: s.progress("pareto "+wl, cluster.SpaceSize(limits)),
	})
	if err != nil {
		return nil, err
	}
	if len(frontier) == 0 {
		return nil, fmt.Errorf("analysis: empty Pareto frontier for %s", wl)
	}
	refCfg, err := s.mix(32, 12)
	if err != nil {
		return nil, err
	}
	refA, err := s.analyze(refCfg, wl)
	if err != nil {
		return nil, err
	}
	ref := energyprop.Reference{PeakPower: float64(refA.Result.BusyPower)}

	// Thin the frontier to maxCurves representatives, always keeping the
	// endpoints, spaced evenly along the frontier.
	picks := frontier
	if maxCurves > 1 && len(frontier) > maxCurves {
		picks = make([]pareto.Point, 0, maxCurves)
		for i := 0; i < maxCurves; i++ {
			idx := i * (len(frontier) - 1) / (maxCurves - 1)
			picks = append(picks, frontier[idx])
		}
	}
	// Deduplicate configs possibly repeated by the spacing. Allocate a
	// fresh slice: picks may alias frontier's backing array.
	seen := map[string]bool{}
	uniq := make([]pareto.Point, 0, len(picks))
	for _, pt := range picks {
		k := pt.Config.Key()
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, pt)
		}
	}
	picks = uniq

	grid := utilGrid()
	fig := &ParetoFigure{Workload: wl, Reference: refCfg}
	fig.Series = append(fig.Series, idealSeries(grid))

	// The reference configuration's own curve anchors the figure.
	refY := refA.Sweep(grid, func(u float64) float64 {
		return 100 * ref.NormalizedAt(refA.CurveRes, u)
	})
	fig.Series = append(fig.Series, report.Series{
		Label: refCfg.String(), X: toPercentGrid(grid), Y: refY,
	})

	for _, pt := range picks {
		if pt.Config.Key() == refCfg.Key() {
			fig.Frontier = append(fig.Frontier, pt)
			fig.Sublinear = append(fig.Sublinear, false)
			continue
		}
		a, err := s.analyze(pt.Config, wl)
		if err != nil {
			return nil, err
		}
		y := a.Sweep(grid, func(u float64) float64 {
			return 100 * ref.NormalizedAt(a.CurveRes, u)
		})
		_, _, sub := ref.SublinearRange(a.CurveRes, grid)
		fig.Series = append(fig.Series, report.Series{
			Label: pt.Config.String(), X: toPercentGrid(grid), Y: y,
		})
		fig.Frontier = append(fig.Frontier, pt)
		fig.Sublinear = append(fig.Sublinear, sub)
	}
	return fig, nil
}

// SublinearCount returns how many plotted frontier configurations are
// sub-linear against the reference.
func (f *ParetoFigure) SublinearCount() int {
	n := 0
	for _, s := range f.Sublinear {
		if s {
			n++
		}
	}
	return n
}

// ResponseMixes are the heterogeneous mixes whose 95th-percentile
// response times Figures 11 and 12 plot.
var ResponseMixes = [][2]int{{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}}

// FigureResponse computes the 95th-percentile response time versus
// utilization for the named mixes (Figure 11 for EP, Figure 12 for
// x264), from the exact M/D/1 waiting-time distribution.
func (s *Suite) FigureResponse(wl string, percentile float64) ([]report.Series, error) {
	grid := respGrid()
	var series []report.Series
	for _, mix := range ResponseMixes {
		cfg, err := s.mix(mix[0], mix[1])
		if err != nil {
			return nil, err
		}
		a, err := s.analyze(cfg, wl)
		if err != nil {
			return nil, err
		}
		y, err := a.ResponsePercentilesAt(grid, percentile, s.Workers)
		if err != nil {
			return nil, fmt.Errorf("analysis: response percentiles for %s: %w", cfg, err)
		}
		series = append(series, report.Series{
			Label: fmt.Sprintf("%d A9: %d K10", mix[0], mix[1]),
			X:     toPercentGrid(grid),
			Y:     y,
		})
	}
	return series, nil
}

// ResponseSpread returns the maximum across-mix spread of the response
// series at each utilization — the quantity behind the paper's claim
// that sub-linear configurations have "minimal impact" for EP
// (sub-millisecond spread) but seconds-level impact for x264.
func ResponseSpread(series []report.Series) ([]float64, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("analysis: no series")
	}
	n := len(series[0].X)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range series {
			if len(s.Y) != n {
				return nil, fmt.Errorf("analysis: ragged series")
			}
			if s.Y[i] < lo {
				lo = s.Y[i]
			}
			if s.Y[i] > hi {
				hi = s.Y[i]
			}
		}
		out[i] = hi - lo
	}
	return out, nil
}

// FrontierSummary returns a compact text list of frontier configs sorted
// by time, for logs and EXPERIMENTS.md.
func FrontierSummary(points []pareto.Point) []string {
	sorted := make([]pareto.Point, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	out := make([]string, len(sorted))
	for i, p := range sorted {
		out[i] = fmt.Sprintf("%s: T=%v E=%v", p.Config, p.Time, p.Energy)
	}
	return out
}
