package analysis

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/pareto"
	"repro/internal/workload"
)

// DegreeRow summarizes the configuration space at one degree of
// inter-node heterogeneity d (the paper's d_max, which its evaluation
// never takes beyond 2).
type DegreeRow struct {
	// Degree is the number of distinct node types available.
	Degree int
	// Types names the node types.
	Types []string
	// SpaceSize is the enumerated configuration count.
	SpaceSize int
	// FrontierSize is the Pareto frontier size.
	FrontierSize int
	// Sublinear counts frontier configurations that are sub-linear
	// against the degree's own maximal configuration.
	Sublinear int
	// BestEnergy is the frontier's minimum energy (joules per job);
	// FastestTime its minimum time (seconds).
	BestEnergy  float64
	FastestTime float64
}

// DegreeStudy extends Section III-D beyond two node types: it evaluates
// a synthetic workload (calibrated demand shape shared across types)
// over 1-, 2- and 3-type spaces built from the catalog (A9; A9+K10;
// A9+A15+K10) and reports how the frontier and its sub-linear region
// grow with the degree of heterogeneity. maxPerType bounds node counts.
func (s *Suite) DegreeStudy(maxPerType int, seed uint64) ([]DegreeRow, error) {
	if maxPerType < 1 {
		return nil, fmt.Errorf("analysis: maxPerType must be positive")
	}
	// One synthetic workload covering every catalog type, deterministic
	// in the seed.
	profiles, err := workload.Generate(s.Catalog, workload.DefaultSyntheticSpec(), 1, seed)
	if err != nil {
		return nil, err
	}
	if len(profiles) != 1 {
		return nil, fmt.Errorf("analysis: synthetic generation failed")
	}
	p := profiles[0]

	tiers := [][]string{
		{"A9"},
		{"A9", "K10"},
		{"A9", "A15", "K10"},
	}
	var rows []DegreeRow
	for _, names := range tiers {
		var limits []cluster.Limit
		var types []*hardware.NodeType
		for _, n := range names {
			nt, err := s.node(n)
			if err != nil {
				return nil, err
			}
			types = append(types, nt)
			limits = append(limits, cluster.Limit{Type: nt, MaxNodes: maxPerType, FixCoresAndFreq: true})
		}
		row := DegreeRow{Degree: len(names), Types: names, SpaceSize: cluster.SpaceSize(limits)}

		frontier, err := pareto.FrontierSweep(limits, p, s.Opt, pareto.SweepOptions{Workers: s.Workers})
		if err != nil {
			return nil, err
		}
		row.FrontierSize = len(frontier)
		if len(frontier) > 0 {
			row.FastestTime = float64(frontier[0].Time)
			row.BestEnergy = float64(frontier[len(frontier)-1].Energy)
		}

		// Reference: the maximal configuration of this degree.
		var groups []cluster.Group
		for _, nt := range types {
			groups = append(groups, cluster.FullNodes(nt, maxPerType))
		}
		refCfg, err := cluster.NewConfig(groups...)
		if err != nil {
			return nil, err
		}
		refA, err := energyprop.Analyze(refCfg, p, s.Opt, s.CurvePanels)
		if err != nil {
			return nil, err
		}
		ref := energyprop.Reference{PeakPower: float64(refA.Result.BusyPower)}
		for _, pt := range frontier {
			a, err := energyprop.Analyze(pt.Config, p, s.Opt, s.CurvePanels)
			if err != nil {
				return nil, err
			}
			if _, ok := ref.SublinearCrossover(a.CurveRes); ok {
				row.Sublinear++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
