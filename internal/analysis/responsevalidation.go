package analysis

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/simulator"
	"repro/internal/stats"
)

// ResponseValidation compares the paper's M/D/1 response-time model —
// which assumes a *deterministic* service time T_P — against a queueing
// simulation whose service times come from the discrete-event cluster
// simulator (with all its jitter sources active). It answers how much
// the deterministic-service assumption distorts the percentile figures.
type ResponseValidation struct {
	Workload string
	Mix      string
	// Utilization of the comparison.
	Utilization float64
	// ModelP95 is the exact M/D/1 percentile with D = modeled T_P.
	ModelP95 float64
	// SimP95 is the Monte-Carlo percentile with empirical service times.
	SimP95 float64
	// ServiceCV is the coefficient of variation of the simulated
	// service times (zero would be exactly deterministic).
	ServiceCV float64
	// ErrPct is the relative percentile error in percent.
	ErrPct float64
}

// ValidateResponseModel runs the comparison for one workload and mix at
// the given utilization. samples controls how many cluster simulations
// build the empirical service-time distribution; jobs controls the
// queueing simulation length.
func (s *Suite) ValidateResponseModel(wl string, nA9, nK10 int, u float64, samples, jobs int, seed uint64) (*ResponseValidation, error) {
	if u <= 0 || u >= 1 {
		return nil, fmt.Errorf("analysis: utilization %g outside (0,1)", u)
	}
	if samples < 2 {
		return nil, fmt.Errorf("analysis: need at least 2 service samples")
	}
	cfg, err := s.mix(nA9, nK10)
	if err != nil {
		return nil, err
	}
	p, err := s.profile(wl)
	if err != nil {
		return nil, err
	}

	// Modeled deterministic service and its exact M/D/1 percentile.
	mres, err := model.Evaluate(cfg, p, s.Opt)
	if err != nil {
		return nil, err
	}
	q, err := queueing.NewMD1FromUtilization(u, float64(mres.Time))
	if err != nil {
		return nil, err
	}
	modelP95, err := q.ResponsePercentile(95)
	if err != nil {
		return nil, err
	}

	// Empirical service times from the cluster simulator.
	services := make([]float64, samples)
	var summary stats.Summary
	for i := range services {
		sres, err := simulator.Run(cfg, p, s.Effects, s.Meter, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		services[i] = float64(sres.Time)
		summary.Add(float64(sres.Time))
	}
	meanService := summary.Mean()
	cv := 0.0
	if meanService > 0 {
		cv = summary.StdDev() / meanService
	}

	// G/G/1 simulation: Poisson arrivals tuned so the *simulated* mean
	// service yields the target utilization; services resampled from
	// the empirical distribution.
	arrivalRate := u / meanService
	idx := 0
	sim, err := queueing.SimulateGG1(
		func(r *stats.RNG) float64 { return r.ExpFloat64(arrivalRate) },
		func(r *stats.RNG) float64 {
			idx = r.Intn(len(services))
			return services[idx]
		},
		queueing.SimOptions{Jobs: jobs, Warmup: jobs / 20, Seed: seed ^ 0xabcdef},
	)
	if err != nil {
		return nil, err
	}
	simP95, err := sim.Percentile(95)
	if err != nil {
		return nil, err
	}

	return &ResponseValidation{
		Workload:    wl,
		Mix:         cfg.String(),
		Utilization: u,
		ModelP95:    modelP95,
		SimP95:      simP95,
		ServiceCV:   cv,
		ErrPct:      100 * stats.RelErr(modelP95, simP95),
	}, nil
}
