// Package analysis wires the substrates together into one driver per
// paper artifact: Tables 4-8 and Figures 2, 5-12, plus the ablations
// DESIGN.md calls out. cmd/reproduce and the benchmark harness are thin
// shells over this package.
package analysis

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/powermeter"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Suite carries the shared experiment context.
type Suite struct {
	Catalog  *hardware.Catalog
	Registry *workload.Registry
	// Opt is the model variant (zero value = paper model).
	Opt model.Options
	// Effects and Meter configure the simulated measurement substrate.
	Effects simulator.Effects
	Meter   powermeter.Meter
	// CurvePanels is the sampling resolution of utilization curves.
	CurvePanels int
	// ProgressEvery > 0 makes the configuration-space sweeps report
	// "evaluated/total" counts to ProgressW at that count interval —
	// deterministic (count-based, never wall-clock). Zero disables.
	ProgressEvery int
	// ProgressW receives the progress lines; nil disables reporting.
	ProgressW io.Writer
	// Workers is the fan-out of the parallel sweeps (configuration
	// frontiers, response-percentile grids); <= 0 uses GOMAXPROCS.
	Workers int
}

// NewSuite builds the default paper setup: A9/K10 catalog, the six
// calibrated workloads, default simulator effects and meter.
func NewSuite() (*Suite, error) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		return nil, err
	}
	return &Suite{
		Catalog:     cat,
		Registry:    reg,
		Effects:     simulator.DefaultEffects(),
		Meter:       powermeter.DefaultMeter(),
		CurvePanels: 100,
	}, nil
}

// MustNewSuite panics on setup failure (the default setup is static).
func MustNewSuite() *Suite {
	s, err := NewSuite()
	if err != nil {
		panic(err)
	}
	return s
}

// node returns a catalog node or an error with experiment context.
func (s *Suite) node(name string) (*hardware.NodeType, error) {
	n, err := s.Catalog.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	return n, nil
}

// profile returns a workload profile or an error with context.
func (s *Suite) profile(name string) (*workload.Profile, error) {
	p, err := s.Registry.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	return p, nil
}

// mix builds the (wimpy, brawny) configuration used throughout the
// figures.
func (s *Suite) mix(nA9, nK10 int) (cluster.Config, error) {
	var groups []cluster.Group
	if nA9 > 0 {
		a9, err := s.node("A9")
		if err != nil {
			return cluster.Config{}, err
		}
		groups = append(groups, cluster.FullNodes(a9, nA9))
	}
	if nK10 > 0 {
		k10, err := s.node("K10")
		if err != nil {
			return cluster.Config{}, err
		}
		groups = append(groups, cluster.FullNodes(k10, nK10))
	}
	return cluster.NewConfig(groups...)
}

// progress returns a count-based progress reporter for a sweep over
// total configurations, or nil (a no-op) when reporting is disabled.
func (s *Suite) progress(label string, total int) *telemetry.Progress {
	return telemetry.NewProgress(s.ProgressW, label, int64(total), int64(s.ProgressEvery))
}

// analyze evaluates model + curve for a config/workload pair.
func (s *Suite) analyze(cfg cluster.Config, wl string) (*energyprop.Analysis, error) {
	p, err := s.profile(wl)
	if err != nil {
		return nil, err
	}
	return energyprop.Analyze(cfg, p, s.Opt, s.CurvePanels)
}

// utilGrid returns the standard 10..100% utilization grid of the
// figures, as fractions.
func utilGrid() []float64 {
	return stats.Linspace(0.10, 1.0, 19)
}

// respGrid returns the utilization grid of the response-time figures;
// it stops short of saturation where M/D/1 diverges.
func respGrid() []float64 {
	return stats.Linspace(0.20, 0.95, 16)
}
