package analysis

import (
	"fmt"
	"io"

	"repro/internal/workload"
)

// WriteSummary renders a single human-readable report covering every
// reproduced artifact: the four tables, the headline findings of each
// figure, and the extension studies. cmd/reproduce writes it as
// SUMMARY.txt next to the per-artifact files.
func (s *Suite) WriteSummary(w io.Writer, seed uint64) error {
	head := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format+"\n", args...)
		return err
	}
	if err := head("REPRODUCTION SUMMARY — On Energy Proportionality and Time-Energy"); err != nil {
		return err
	}
	if err := head("Performance of Heterogeneous Clusters (CLUSTER 2016)\n"); err != nil {
		return err
	}

	// Table 4.
	rows, err := s.Table4(seed)
	if err != nil {
		return err
	}
	if err := RenderTable4(w, rows); err != nil {
		return err
	}
	if err := head(""); err != nil {
		return err
	}

	// Table 6.
	t6, err := s.Table6()
	if err != nil {
		return err
	}
	if err := RenderTable6(w, t6); err != nil {
		return err
	}
	if err := head(""); err != nil {
		return err
	}

	// Tables 7 and 8.
	t7, err := s.Table7()
	if err != nil {
		return err
	}
	if err := RenderMetricsRows(w, "Table 7: single-node energy proportionality", t7); err != nil {
		return err
	}
	if err := head(""); err != nil {
		return err
	}
	t8, err := s.Table8()
	if err != nil {
		return err
	}
	if err := RenderMetricsRows(w, "Table 8: cluster-wide energy proportionality (1 kW budget)", t8); err != nil {
		return err
	}
	if err := head(""); err != nil {
		return err
	}

	// Figure findings.
	if err := head("Figure findings"); err != nil {
		return err
	}
	if err := head("---------------"); err != nil {
		return err
	}
	for _, wl := range []string{workload.NameEP, workload.NameX264} {
		fig, err := s.FigurePareto(wl, 6)
		if err != nil {
			return err
		}
		if err := head("Fig %s (%s): %d of %d plotted Pareto configurations are sub-linear vs %s",
			map[string]string{workload.NameEP: "9", workload.NameX264: "10"}[wl],
			wl, fig.SublinearCount(), len(fig.Frontier), fig.Reference); err != nil {
			return err
		}
	}
	for _, fc := range []struct {
		fig, wl, unit string
		scale         float64
	}{
		{"11", workload.NameEP, "ms", 1000},
		{"12", workload.NameX264, "s", 1},
	} {
		series, err := s.FigureResponse(fc.wl, 95)
		if err != nil {
			return err
		}
		spread, err := ResponseSpread(series)
		if err != nil {
			return err
		}
		mid := len(spread) / 2
		if err := head("Fig %s (%s): p95 response spread across sub-linear mixes at ~60%% utilization: %.3g %s",
			fc.fig, fc.wl, spread[mid]*fc.scale, fc.unit); err != nil {
			return err
		}
	}
	n, err := s.ConfigSpaceSize()
	if err != nil {
		return err
	}
	if err := head("Footnote 4: configuration space of 10 ARM + 10 AMD nodes = %d", n); err != nil {
		return err
	}
	if err := head(""); err != nil {
		return err
	}

	// Extension headline.
	if err := head("Extensions"); err != nil {
		return err
	}
	if err := head("----------"); err != nil {
		return err
	}
	rows2, err := s.SensitivityPPRRatio([]float64{0.5, 1, 2})
	if err != nil {
		return err
	}
	for _, r := range rows2 {
		if err := head("PPR ratio %.1f: sub-linear mix costs %.2fx time, saves %.0f%% power, energy/unit ratio %.2f",
			r.Ratio, r.TimeInflation, 100*r.PowerSaving, r.EnergyPerUnitRatio); err != nil {
			return err
		}
	}
	degrees, err := s.DegreeStudy(8, 42)
	if err != nil {
		return err
	}
	for _, d := range degrees {
		if err := head("degree d=%d (%v): %d configs, %d on the frontier, %d sub-linear",
			d.Degree, d.Types, d.SpaceSize, d.FrontierSize, d.Sublinear); err != nil {
			return err
		}
	}
	stats4, err := s.Table4Statistics(4, seed)
	if err != nil {
		return err
	}
	if err := head(""); err != nil {
		return err
	}
	if err := head("Validation stability across 4 seeds (time error mean±sd %%):"); err != nil {
		return err
	}
	for _, r := range stats4 {
		if err := head("  %-14s %5.1f ± %.1f", r.Workload, r.TimeErrMean, r.TimeErrSD); err != nil {
			return err
		}
	}
	return nil
}
