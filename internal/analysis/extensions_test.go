package analysis

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/pareto"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestSensitivityCrossover: as the wimpy-to-brawny PPR ratio falls, the
// time cost of the sub-linear (25,5) mix must rise, and its energy-per-
// unit advantage must flip into a penalty — the generalization of the
// paper's EP-versus-x264 asymmetry.
func TestSensitivityCrossover(t *testing.T) {
	s := suite(t)
	ratios := []float64{0.25, 0.5, 1, 2, 4, 8}
	rows, err := s.SensitivityPPRRatio(ratios)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ratios) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].TimeInflation >= rows[i-1].TimeInflation {
			t.Errorf("time inflation not decreasing with PPR ratio: %.3f at r=%g after %.3f at r=%g",
				rows[i].TimeInflation, rows[i].Ratio, rows[i-1].TimeInflation, rows[i-1].Ratio)
		}
	}
	// Inflation must always be at least 1 (removing nodes cannot speed
	// the cluster up) and the power saving positive (fewer nodes burn
	// less).
	for _, r := range rows {
		if r.TimeInflation < 1 {
			t.Errorf("r=%g: time inflation %.3f below 1", r.Ratio, r.TimeInflation)
		}
		if r.PowerSaving <= 0 {
			t.Errorf("r=%g: no power saving (%.3f)", r.Ratio, r.PowerSaving)
		}
	}
	// At a strongly wimpy-favoring ratio the small mix is more energy
	// efficient per unit; at a strongly brawny-favoring ratio it is not.
	if rows[len(rows)-1].EnergyPerUnitRatio >= 1 {
		t.Errorf("r=%g: energy per unit ratio %.3f, want < 1",
			rows[len(rows)-1].Ratio, rows[len(rows)-1].EnergyPerUnitRatio)
	}
	if rows[0].EnergyPerUnitRatio <= 1 {
		t.Errorf("r=%g: energy per unit ratio %.3f, want > 1",
			rows[0].Ratio, rows[0].EnergyPerUnitRatio)
	}
}

func TestSensitivityValidation(t *testing.T) {
	s := suite(t)
	if _, err := s.SensitivityPPRRatio(nil); err == nil {
		t.Error("empty ratio list accepted")
	}
	if _, err := s.SensitivityPPRRatio([]float64{-1}); err == nil {
		t.Error("negative ratio accepted")
	}
}

// TestFullSpaceFrontierSmall uses a reduced space (6 A9 x 3 K10, still
// with all core/frequency choices) to keep the test fast.
func TestFullSpaceFrontierSmall(t *testing.T) {
	s := suite(t)
	res, err := s.FullSpaceFrontier(workload.NameEP, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// (6*4*5+1)*(3*6*3+1)-1 = 121*55-1 = 6654.
	if res.SpaceSize != 6654 {
		t.Errorf("space size %d, want 6654", res.SpaceSize)
	}
	// For EP at this small scale the frontier degenerates to the four
	// full-A9 mixes (6 A9 + k K10, k = 0..3): adding an A9 node always
	// improves both axes, and with so few K10 steps no throttled point
	// lands between two node-count points. (At the full 32x12 scale
	// throttled K10 configurations do reach the frontier — slowing a
	// brawny node shifts rate-matched work onto the more efficient
	// wimpy nodes; see BenchmarkExtensionFullSpacePareto.)
	if len(res.Frontier) < 3 {
		t.Errorf("frontier suspiciously small: %d", len(res.Frontier))
	}
	if res.ThrottledPoints != 0 {
		t.Errorf("%d throttled frontier points in the 6x3 space; expected none at this scale", res.ThrottledPoints)
	}
	// Frontier must be sorted by time with strictly decreasing energy.
	for i := 1; i < len(res.Frontier); i++ {
		if res.Frontier[i].Time <= res.Frontier[i-1].Time ||
			res.Frontier[i].Energy >= res.Frontier[i-1].Energy {
			t.Fatalf("frontier not strictly improving at %d", i)
		}
	}
	for _, pt := range res.Frontier {
		if pt.Config.Count("A9") != 6 {
			t.Errorf("frontier point %s does not hold A9 at max", pt.Config)
		}
	}
}

// TestFullSpaceAtLeastAsGoodAsFixed: on the shared node-count space the
// full frontier's minimum energy is <= the fixed-cores frontier's.
func TestFullSpaceAtLeastAsGoodAsFixed(t *testing.T) {
	s := suite(t)
	full, err := s.FullSpaceFrontier(workload.NameBlackscholes, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	minFull := full.Frontier[len(full.Frontier)-1].Energy
	fastFull := full.Frontier[0].Time

	// Fixed cores/freq over the same node counts.
	arm, _ := s.Catalog.Lookup("A9")
	amd, _ := s.Catalog.Lookup("K10")
	p, err := s.profile(workload.NameBlackscholes)
	if err != nil {
		t.Fatal(err)
	}
	fixedFront, err := frontierFixed(s, p, arm, amd, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	minFixed := fixedFront[len(fixedFront)-1].Energy
	fastFixed := fixedFront[0].Time
	if minFull > minFixed {
		t.Errorf("full-space min energy %v above fixed-space %v", minFull, minFixed)
	}
	if fastFull > fastFixed {
		t.Errorf("full-space fastest %v slower than fixed-space %v", fastFull, fastFixed)
	}
}

// frontierFixed computes the node-count-only frontier used as the
// comparison baseline.
func frontierFixed(s *Suite, p *workload.Profile, arm, amd *hardware.NodeType, maxA9, maxK10 int) ([]pareto.Point, error) {
	limits := []cluster.Limit{
		{Type: arm, MaxNodes: maxA9, FixCoresAndFreq: true},
		{Type: amd, MaxNodes: maxK10, FixCoresAndFreq: true},
	}
	return pareto.FrontierFor(limits, p, s.Opt)
}

func TestSensitivityMonotonePowerSaving(t *testing.T) {
	s := suite(t)
	rows, err := s.SensitivityPPRRatio(stats.Linspace(0.5, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PowerSaving < 0.1 || r.PowerSaving > 0.9 {
			t.Errorf("r=%g: power saving %.3f outside plausible band", r.Ratio, r.PowerSaving)
		}
	}
}
