package analysis

import (
	"testing"

	"repro/internal/workload"
)

// TestResponseModelHoldsUnderJitter: the M/D/1 percentile must stay
// within a modest band of the jittered-service simulation — the
// deterministic-service assumption is an approximation, not a fiction.
func TestResponseModelHoldsUnderJitter(t *testing.T) {
	if testing.Short() {
		t.Skip("queueing simulation skipped in -short")
	}
	s := suite(t)
	for _, wl := range []string{workload.NameEP, workload.NameJulius} {
		rv, err := s.ValidateResponseModel(wl, 8, 4, 0.6, 64, 200000, 11)
		if err != nil {
			t.Fatal(err)
		}
		if rv.ServiceCV <= 0 {
			t.Errorf("%s: service CV %g; the simulator should jitter", wl, rv.ServiceCV)
		}
		if rv.ServiceCV > 0.2 {
			t.Errorf("%s: service CV %g implausibly large", wl, rv.ServiceCV)
		}
		// The simulator's mean service exceeds the model's T_P (the
		// effects only slow execution), so the simulated percentile sits
		// above the model one; the paper's validation errors bound how
		// far. Allow 25%.
		if rv.ErrPct > 25 {
			t.Errorf("%s: p95 model error %.1f%% (model %.4g vs sim %.4g)",
				wl, rv.ErrPct, rv.ModelP95, rv.SimP95)
		}
		if rv.SimP95 < rv.ModelP95*0.8 {
			t.Errorf("%s: simulated p95 %.4g far below model %.4g", wl, rv.SimP95, rv.ModelP95)
		}
	}
}

func TestResponseModelValidation(t *testing.T) {
	s := suite(t)
	if _, err := s.ValidateResponseModel(workload.NameEP, 4, 2, 0, 4, 100, 1); err == nil {
		t.Error("zero utilization accepted")
	}
	if _, err := s.ValidateResponseModel(workload.NameEP, 4, 2, 1, 4, 100, 1); err == nil {
		t.Error("utilization 1 accepted")
	}
	if _, err := s.ValidateResponseModel(workload.NameEP, 4, 2, 0.5, 1, 100, 1); err == nil {
		t.Error("single service sample accepted")
	}
	if _, err := s.ValidateResponseModel("nope", 4, 2, 0.5, 4, 100, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}
