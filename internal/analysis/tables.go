package analysis

import (
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/report"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table4 runs the model-versus-simulator validation for every paper
// workload on the validation cluster (8 A9 + 4 K10, all cores at fmax),
// reproducing Table 4's error columns.
func (s *Suite) Table4(seed uint64) ([]simulator.ValidationRow, error) {
	cfg, err := s.mix(8, 4)
	if err != nil {
		return nil, err
	}
	var rows []simulator.ValidationRow
	for _, name := range workload.PaperNames() {
		p, err := s.profile(name)
		if err != nil {
			return nil, err
		}
		row, err := simulator.Validate(cfg, p, s.Effects, s.Meter, seed)
		if err != nil {
			return nil, fmt.Errorf("analysis: table 4 %s: %w", name, err)
		}
		rows = append(rows, row)
		seed++
	}
	return rows, nil
}

// RenderTable4 writes the validation rows against the paper's values.
func RenderTable4(w io.Writer, rows []simulator.ValidationRow) error {
	paperTime := map[string]float64{
		workload.NameEP: 3, workload.NameMemcached: 10, workload.NameX264: 11,
		workload.NameBlackscholes: 4, workload.NameJulius: 13, workload.NameRSA: 2,
	}
	paperEnergy := map[string]float64{
		workload.NameEP: 10, workload.NameMemcached: 8, workload.NameX264: 10,
		workload.NameBlackscholes: 7, workload.NameJulius: 1, workload.NameRSA: 8,
	}
	t := report.NewTable("Table 4: cluster validation (model vs simulated measurement)",
		"Program", "Time err[%]", "Paper time err[%]", "Energy err[%]", "Paper energy err[%]")
	for _, r := range rows {
		t.MustAddRow(r.Workload,
			fmt.Sprintf("%.1f", r.TimeErrPct), fmt.Sprintf("%.0f", paperTime[r.Workload]),
			fmt.Sprintf("%.1f", r.EnergyErrPct), fmt.Sprintf("%.0f", paperEnergy[r.Workload]))
	}
	return t.Render(w)
}

// Table4Stats is the multi-seed view of the validation study: the
// paper reports one number per workload, but a single simulated run is
// one draw from the noise distribution. Stats summarizes mean and
// standard deviation of the errors across seeds.
type Table4Stats struct {
	Workload                   string
	TimeErrMean, TimeErrSD     float64
	EnergyErrMean, EnergyErrSD float64
	Runs                       int
}

// Table4Statistics repeats the Table 4 validation across seeds and
// aggregates per-workload error statistics.
func (s *Suite) Table4Statistics(seeds int, base uint64) ([]Table4Stats, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("analysis: need at least 2 seeds")
	}
	type acc struct{ time, energy stats.Summary }
	accs := make(map[string]*acc)
	for i := 0; i < seeds; i++ {
		rows, err := s.Table4(base + uint64(i)*101)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			a := accs[r.Workload]
			if a == nil {
				a = &acc{}
				accs[r.Workload] = a
			}
			a.time.Add(r.TimeErrPct)
			a.energy.Add(r.EnergyErrPct)
		}
	}
	var out []Table4Stats
	for _, name := range workload.PaperNames() {
		a := accs[name]
		if a == nil {
			continue
		}
		out = append(out, Table4Stats{
			Workload:      name,
			TimeErrMean:   a.time.Mean(),
			TimeErrSD:     a.time.StdDev(),
			EnergyErrMean: a.energy.Mean(),
			EnergyErrSD:   a.energy.StdDev(),
			Runs:          a.time.N(),
		})
	}
	return out, nil
}

// PPRRow is one line of Table 6.
type PPRRow struct {
	Workload string
	Unit     string
	A9, K10  float64
	// PaperA9 and PaperK10 are the published values for side-by-side
	// reporting.
	PaperA9, PaperK10 float64
}

// Table6 computes the performance-to-power ratio of a single node of
// each type at its most energy-efficient configuration (all cores,
// maximum frequency), reproducing Table 6.
func (s *Suite) Table6() ([]PPRRow, error) {
	var rows []PPRRow
	for _, name := range workload.PaperNames() {
		row := PPRRow{
			Workload: name,
			Unit:     fmt.Sprintf("(%s/s)/W", workload.PaperUnit[name]),
			PaperA9:  workload.PaperPPR[name]["A9"],
			PaperK10: workload.PaperPPR[name]["K10"],
		}
		for _, nodeName := range []string{"A9", "K10"} {
			node, err := s.node(nodeName)
			if err != nil {
				return nil, err
			}
			cfg, err := cluster.NewConfig(cluster.FullNodes(node, 1))
			if err != nil {
				return nil, err
			}
			a, err := s.analyze(cfg, name)
			if err != nil {
				return nil, err
			}
			if nodeName == "A9" {
				row.A9 = a.PPRAt(1)
			} else {
				row.K10 = a.PPRAt(1)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable6 writes the PPR table.
func RenderTable6(w io.Writer, rows []PPRRow) error {
	t := report.NewTable("Table 6: performance-to-power ratio",
		"Program", "PPR unit", "A9", "paper A9", "K10", "paper K10")
	for _, r := range rows {
		t.MustAddRow(r.Workload, r.Unit,
			fmt.Sprintf("%.4g", r.A9), fmt.Sprintf("%.4g", r.PaperA9),
			fmt.Sprintf("%.4g", r.K10), fmt.Sprintf("%.4g", r.PaperK10))
	}
	return t.Render(w)
}

// MetricsRow is one (workload, configuration) proportionality entry.
type MetricsRow struct {
	Workload string
	Config   string
	Metrics  energyprop.Metrics
}

// Table7 computes the single-node proportionality metrics for both node
// types across all workloads.
func (s *Suite) Table7() ([]MetricsRow, error) {
	var rows []MetricsRow
	for _, name := range workload.PaperNames() {
		for _, nodeName := range []string{"A9", "K10"} {
			node, err := s.node(nodeName)
			if err != nil {
				return nil, err
			}
			cfg, err := cluster.NewConfig(cluster.FullNodes(node, 1))
			if err != nil {
				return nil, err
			}
			a, err := s.analyze(cfg, name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, MetricsRow{Workload: name, Config: nodeName, Metrics: a.Metrics()})
		}
	}
	return rows, nil
}

// Table8 computes cluster-wide proportionality metrics for the 1 kW
// substitution-ladder mixes.
func (s *Suite) Table8() ([]MetricsRow, error) {
	spec, err := cluster.DefaultBudget(s.Catalog)
	if err != nil {
		return nil, err
	}
	ladder, err := spec.Ladder()
	if err != nil {
		return nil, err
	}
	var rows []MetricsRow
	for _, name := range workload.PaperNames() {
		for _, m := range ladder {
			a, err := s.analyze(m.Config, name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, MetricsRow{
				Workload: name,
				Config:   fmt.Sprintf("%d A9: %d K10", m.Wimpy, m.Brawny),
				Metrics:  a.Metrics(),
			})
		}
	}
	return rows, nil
}

// RenderMetricsRows writes proportionality metric rows as a table.
func RenderMetricsRows(w io.Writer, title string, rows []MetricsRow) error {
	t := report.NewTable(title, "Program", "Config", "DPR", "IPR", "EPM", "LDR")
	for _, r := range rows {
		t.MustAddRow(r.Workload, r.Config,
			fmt.Sprintf("%.2f", r.Metrics.DPR),
			fmt.Sprintf("%.2f", r.Metrics.IPR),
			fmt.Sprintf("%.2f", r.Metrics.EPM),
			fmt.Sprintf("%.2f", r.Metrics.LDR))
	}
	return t.Render(w)
}

// ConfigSpaceSize returns the footnote-4 configuration-space count for
// the 10-ARM + 10-AMD space.
func (s *Suite) ConfigSpaceSize() (int, error) {
	arm, err := s.node("A9")
	if err != nil {
		return 0, err
	}
	amd, err := s.node("K10")
	if err != nil {
		return 0, err
	}
	return cluster.SpaceSize([]cluster.Limit{
		{Type: arm, MaxNodes: 10},
		{Type: amd, MaxNodes: 10},
	}), nil
}
