package analysis

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/pareto"
	"repro/internal/workload"
)

// SensitivityRow is one point of the PPR-ratio sensitivity study.
type SensitivityRow struct {
	// Ratio is the wimpy-to-brawny PPR ratio of the synthetic workload
	// variant (1 means both node types deliver the same work per joule).
	Ratio float64
	// TimeInflation is T_P of the sub-linear mix (25 A9 : 5 K10) over
	// T_P of the reference (32 A9 : 12 K10). At a fixed utilization the
	// M/D/1 response scales exactly with T_P, so this is also the
	// response-time inflation at every percentile.
	TimeInflation float64
	// PowerSaving is the fraction of the reference's average power the
	// sub-linear mix saves at 50% utilization.
	PowerSaving float64
	// EnergyPerUnitRatio compares energy per work unit (small/reference)
	// at full load; below 1 the small mix is strictly more efficient.
	EnergyPerUnitRatio float64
}

// SensitivityPPRRatio generalizes Section III-E beyond the six paper
// workloads: it synthesizes compute-bound workload variants whose
// wimpy-to-brawny PPR ratio sweeps the given values (holding the K10
// side at EP's published operating point and recalibrating the A9 side),
// then quantifies the cost of the paper's sub-linear configurations as a
// function of that ratio. The paper's claim — sub-linear configurations
// are near-free when the wimpy PPR is higher and expensive when it is
// lower — becomes a curve with a visible crossover.
func (s *Suite) SensitivityPPRRatio(ratios []float64) ([]SensitivityRow, error) {
	if len(ratios) == 0 {
		return nil, fmt.Errorf("analysis: no ratios")
	}
	base, err := workload.PaperSpec(workload.NameEP)
	if err != nil {
		return nil, err
	}
	k10PPR := base.Targets["K10"].PPR

	refCfg, err := s.mix(32, 12)
	if err != nil {
		return nil, err
	}
	smallCfg, err := s.mix(25, 5)
	if err != nil {
		return nil, err
	}

	var rows []SensitivityRow
	for _, r := range ratios {
		if r <= 0 {
			return nil, fmt.Errorf("analysis: non-positive PPR ratio %g", r)
		}
		spec := base
		spec.Name = fmt.Sprintf("EP-pprx%.2f", r)
		targets := make(map[string]workload.Targets, len(base.Targets))
		for nt, tgt := range base.Targets {
			targets[nt] = tgt
		}
		a9 := targets["A9"]
		a9.PPR = r * k10PPR
		targets["A9"] = a9
		spec.Targets = targets
		p, err := spec.Build(s.Catalog)
		if err != nil {
			return nil, fmt.Errorf("analysis: ratio %g: %w", r, err)
		}

		refA, err := s.analyzeProfile(refCfg, p)
		if err != nil {
			return nil, err
		}
		smallA, err := s.analyzeProfile(smallCfg, p)
		if err != nil {
			return nil, err
		}
		row := SensitivityRow{
			Ratio:         r,
			TimeInflation: float64(smallA.Result.Time) / float64(refA.Result.Time),
		}
		const u = 0.5
		row.PowerSaving = 1 - smallA.PowerAt(u)/refA.PowerAt(u)
		refEPU := float64(refA.Result.Energy) / p.JobUnits
		smallEPU := float64(smallA.Result.Energy) / p.JobUnits
		row.EnergyPerUnitRatio = smallEPU / refEPU
		rows = append(rows, row)
	}
	return rows, nil
}

// analyzeProfile is analyze for an already-built profile.
func (s *Suite) analyzeProfile(cfg cluster.Config, p *workload.Profile) (*energyprop.Analysis, error) {
	return energyprop.Analyze(cfg, p, s.Opt, s.CurvePanels)
}

// FullSpaceFrontier computes the energy-deadline Pareto frontier over
// the *complete* configuration space of footnote 4 — node counts, active
// cores per node and DVFS steps all free — rather than the node-count
// slice Figures 9/10 label. It answers a question the paper leaves
// open: do reduced-core or reduced-frequency operating points appear on
// the frontier, or is the frontier purely a node-count phenomenon?
type FullSpaceResult struct {
	Workload string
	// SpaceSize is the number of configurations enumerated.
	SpaceSize int
	// Frontier is the Pareto set.
	Frontier []pareto.Point
	// ThrottledPoints counts frontier configurations that use fewer
	// than the maximum cores or a sub-maximal frequency on some group.
	ThrottledPoints int
}

// FullSpaceFrontier enumerates up to maxA9 x maxK10 nodes with all core
// and frequency choices. The space grows as
// (maxA9*4*5 + 1) * (maxK10*6*3 + 1) - 1; 32x12 gives ~139k configs.
func (s *Suite) FullSpaceFrontier(wl string, maxA9, maxK10 int) (*FullSpaceResult, error) {
	arm, err := s.node("A9")
	if err != nil {
		return nil, err
	}
	amd, err := s.node("K10")
	if err != nil {
		return nil, err
	}
	p, err := s.profile(wl)
	if err != nil {
		return nil, err
	}
	limits := []cluster.Limit{
		{Type: arm, MaxNodes: maxA9},
		{Type: amd, MaxNodes: maxK10},
	}
	res := &FullSpaceResult{Workload: wl, SpaceSize: cluster.SpaceSize(limits)}

	// The memoized sweep engine streams the space itself: unit-calc
	// tables replace per-config Evaluate, subtree pruning skips regions
	// the running frontier already dominates, and only survivors get a
	// materialized model.Result.
	pr := s.progress("full-space "+wl, res.SpaceSize)
	front, err := pareto.FrontierSweep(limits, p, s.Opt, pareto.SweepOptions{Progress: pr, Workers: s.Workers})
	if err != nil {
		return nil, err
	}
	res.Frontier = front
	for _, pt := range res.Frontier {
		for _, g := range pt.Config.Groups {
			if g.Cores != g.Type.Cores || g.Freq != g.Type.FMax() {
				res.ThrottledPoints++
				break
			}
		}
	}
	return res, nil
}
