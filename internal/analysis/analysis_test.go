package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func suite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTable4ErrorsWithinBand(t *testing.T) {
	s := suite(t)
	rows, err := s.Table4(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.TimeErrPct < 0 || r.TimeErrPct > 20 {
			t.Errorf("%s: time error %.1f%% outside validation band", r.Workload, r.TimeErrPct)
		}
		if r.EnergyErrPct < 0 || r.EnergyErrPct > 20 {
			t.Errorf("%s: energy error %.1f%% outside validation band", r.Workload, r.EnergyErrPct)
		}
	}
	var b strings.Builder
	if err := RenderTable4(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "memcached") {
		t.Error("rendered table missing workload rows")
	}
}

// TestTable4StatisticsStable: across seeds, every workload's mean error
// stays in the validation band and the spread is modest — the Table 4
// reproduction is not a lucky draw.
func TestTable4StatisticsStable(t *testing.T) {
	s := suite(t)
	rows, err := s.Table4Statistics(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d workloads", len(rows))
	}
	for _, r := range rows {
		if r.Runs != 8 {
			t.Errorf("%s: %d runs", r.Workload, r.Runs)
		}
		if r.TimeErrMean > 18 {
			t.Errorf("%s: mean time error %.1f%% above band", r.Workload, r.TimeErrMean)
		}
		if r.TimeErrSD > 6 {
			t.Errorf("%s: time error SD %.1f%% too unstable", r.Workload, r.TimeErrSD)
		}
		if r.EnergyErrMean > 18 {
			t.Errorf("%s: mean energy error %.1f%% above band", r.Workload, r.EnergyErrMean)
		}
	}
	if _, err := s.Table4Statistics(1, 1); err == nil {
		t.Error("single seed accepted")
	}
}

func TestTable6MatchesPaper(t *testing.T) {
	s := suite(t)
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if stats.RelErr(r.A9, r.PaperA9) > 0.02 {
			t.Errorf("%s A9 PPR %.4g vs paper %.4g", r.Workload, r.A9, r.PaperA9)
		}
		if stats.RelErr(r.K10, r.PaperK10) > 0.02 {
			t.Errorf("%s K10 PPR %.4g vs paper %.4g", r.Workload, r.K10, r.PaperK10)
		}
	}
}

// TestTable6PPRWinners verifies the paper's Section III-A observation:
// A9 wins PPR everywhere except RSA-2048 (crypto acceleration) and x264
// (memory bandwidth), where K10 wins.
func TestTable6PPRWinners(t *testing.T) {
	s := suite(t)
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		k10Wins := r.K10 > r.A9
		wantK10 := r.Workload == workload.NameRSA || r.Workload == workload.NameX264
		if k10Wins != wantK10 {
			t.Errorf("%s: K10 wins = %v, paper says %v", r.Workload, k10Wins, wantK10)
		}
	}
}

func TestTable7And8Consistency(t *testing.T) {
	s := suite(t)
	t7, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	if len(t7) != 12 {
		t.Fatalf("table 7 has %d rows, want 12", len(t7))
	}
	t8, err := s.Table8()
	if err != nil {
		t.Fatal(err)
	}
	if len(t8) != 30 { // 6 workloads x 5 ladder mixes
		t.Fatalf("table 8 has %d rows, want 30", len(t8))
	}
	// Homogeneous cluster metrics must equal the single-node metrics.
	t7idx := map[string]float64{}
	for _, r := range t7 {
		t7idx[r.Workload+"/"+r.Config] = r.Metrics.DPR
	}
	for _, r := range t8 {
		var single string
		switch r.Config {
		case "128 A9: 0 K10":
			single = "A9"
		case "0 A9: 16 K10":
			single = "K10"
		default:
			continue
		}
		want := t7idx[r.Workload+"/"+single]
		if math.Abs(r.Metrics.DPR-want) > 1e-6 {
			t.Errorf("%s %s: cluster DPR %.2f != single-node %.2f", r.Workload, r.Config, r.Metrics.DPR, want)
		}
	}
}

// TestTable8HeterogeneousBetweenHomogeneous: the mixed clusters'
// proportionality lies between the two homogeneous extremes for every
// workload (visible in Table 8's monotone columns).
func TestTable8HeterogeneousBetweenHomogeneous(t *testing.T) {
	s := suite(t)
	rows, err := s.Table8()
	if err != nil {
		t.Fatal(err)
	}
	byWorkload := map[string]map[string]float64{}
	for _, r := range rows {
		if byWorkload[r.Workload] == nil {
			byWorkload[r.Workload] = map[string]float64{}
		}
		byWorkload[r.Workload][r.Config] = r.Metrics.DPR
	}
	for wl, m := range byWorkload {
		lo := math.Min(m["128 A9: 0 K10"], m["0 A9: 16 K10"])
		hi := math.Max(m["128 A9: 0 K10"], m["0 A9: 16 K10"])
		for cfg, dpr := range m {
			if cfg == "128 A9: 0 K10" || cfg == "0 A9: 16 K10" {
				continue
			}
			if dpr < lo-1e-9 || dpr > hi+1e-9 {
				t.Errorf("%s %s: DPR %.2f outside homogeneous envelope [%.2f, %.2f]", wl, cfg, dpr, lo, hi)
			}
		}
	}
}

func TestFigure2SeriesShape(t *testing.T) {
	series := Figure2()
	if len(series) != 3 {
		t.Fatalf("figure 2 has %d series, want 3", len(series))
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			t.Errorf("series %q malformed", s.Label)
		}
	}
	if !strings.Contains(series[1].Label, "EPM") {
		t.Error("labels should carry computed metrics")
	}
}

func TestFigure5CurvesOrdered(t *testing.T) {
	s := suite(t)
	series, err := s.Figure5(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 { // ideal, K10, A9
		t.Fatalf("got %d series, want 3", len(series))
	}
	// For EP the A9 sits above the K10 everywhere below peak (it is less
	// proportional), and both sit above ideal.
	var k10, a9 []float64
	for _, ser := range series {
		switch ser.Label {
		case "K10":
			k10 = ser.Y
		case "A9":
			a9 = ser.Y
		}
	}
	for i := range k10 {
		u := series[0].X[i]
		if u >= 99.9 {
			continue
		}
		if a9[i] <= k10[i] {
			t.Errorf("at u=%.0f%%: A9 %.1f%% not above K10 %.1f%% for EP", u, a9[i], k10[i])
		}
		if k10[i] <= u {
			t.Errorf("at u=%.0f%%: K10 %.1f%% not above ideal", u, k10[i])
		}
	}
}

// TestFigure6PPRWinnersAcrossUtilization: Figure 6's message — A9 wins
// PPR for EP and blackscholes at every utilization, K10 wins for x264.
func TestFigure6PPRWinnersAcrossUtilization(t *testing.T) {
	s := suite(t)
	for _, tc := range []struct {
		wl     string
		a9Wins bool
	}{
		{workload.NameEP, true},
		{workload.NameBlackscholes, true},
		{workload.NameX264, false},
	} {
		series, err := s.Figure6(tc.wl)
		if err != nil {
			t.Fatal(err)
		}
		var k10, a9 []float64
		for _, ser := range series {
			switch ser.Label {
			case "K10":
				k10 = ser.Y
			case "A9":
				a9 = ser.Y
			}
		}
		for i := range k10 {
			if (a9[i] > k10[i]) != tc.a9Wins {
				t.Errorf("%s at u=%.0f%%: A9 PPR %.3g vs K10 %.3g, want A9 wins=%v",
					tc.wl, series[0].X[i], a9[i], k10[i], tc.a9Wins)
			}
		}
	}
}

// TestFigure7And8Contradiction reproduces Section III-C: for EP, energy
// proportionality favors the all-K10 cluster while PPR favors the
// all-A9 cluster — the metrics disagree about the best mix.
func TestFigure7And8Contradiction(t *testing.T) {
	s := suite(t)
	f7, err := s.Figure7(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := s.Figure8(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	find := func(series []report.Series, label string) []float64 {
		for _, ser := range series {
			if ser.Label == label {
				return ser.Y
			}
		}
		t.Fatalf("series %q missing", label)
		return nil
	}
	// At mid utilization the K10 homogeneous cluster has the smallest
	// normalized power (least proportionality gap)...
	k10Prop := find(f7, "0 A9: 16 K10")
	a9Prop := find(f7, "128 A9: 0 K10")
	mid := len(k10Prop) / 2
	if k10Prop[mid] >= a9Prop[mid] {
		t.Errorf("K10 cluster should be more proportional: %.1f vs %.1f", k10Prop[mid], a9Prop[mid])
	}
	// ...while the A9 homogeneous cluster has the best PPR.
	k10PPR := find(f8, "0 A9: 16 K10")
	a9PPR := find(f8, "128 A9: 0 K10")
	if a9PPR[mid] <= k10PPR[mid] {
		t.Errorf("A9 cluster should win PPR: %.3g vs %.3g", a9PPR[mid], k10PPR[mid])
	}
}

func TestFigureParetoExposesSublinear(t *testing.T) {
	s := suite(t)
	for _, wl := range []string{workload.NameEP, workload.NameX264} {
		fig, err := s.FigurePareto(wl, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got := fig.SublinearCount(); got == 0 {
			t.Errorf("%s: no sub-linear Pareto configurations found; the paper's core claim requires some", wl)
		}
		if len(fig.Series) < 3 {
			t.Errorf("%s: only %d series", wl, len(fig.Series))
		}
	}
}

// TestFigureResponseSpreads reproduces Section III-E: for EP the spread
// of 95th-percentile response times across sub-linear mixes stays
// sub-millisecond at moderate utilization; for x264 it reaches seconds.
func TestFigureResponseSpreads(t *testing.T) {
	s := suite(t)
	ep, err := s.FigureResponse(workload.NameEP, 95)
	if err != nil {
		t.Fatal(err)
	}
	x264, err := s.FigureResponse(workload.NameX264, 95)
	if err != nil {
		t.Fatal(err)
	}
	epSpread, err := ResponseSpread(ep)
	if err != nil {
		t.Fatal(err)
	}
	xSpread, err := ResponseSpread(x264)
	if err != nil {
		t.Fatal(err)
	}
	// Compare at the 50% utilization grid point.
	idx := 0
	for i, u := range ep[0].X {
		if u >= 50 {
			idx = i
			break
		}
	}
	if epSpread[idx] > 100e-3 {
		t.Errorf("EP response spread at 50%% = %.3g s, want well under 0.1 s", epSpread[idx])
	}
	if xSpread[idx] < 0.5 {
		t.Errorf("x264 response spread at 50%% = %.3g s, want seconds-scale", xSpread[idx])
	}
	// Response times increase with utilization for every mix.
	for _, ser := range append(ep, x264...) {
		for i := 1; i < len(ser.Y); i++ {
			if ser.Y[i] <= ser.Y[i-1] {
				t.Errorf("%s: response not increasing at u=%g", ser.Label, ser.X[i])
			}
		}
	}
}

func TestConfigSpaceSizeFootnote4(t *testing.T) {
	s := suite(t)
	n, err := s.ConfigSpaceSize()
	if err != nil {
		t.Fatal(err)
	}
	if n != 36380 {
		t.Errorf("config space = %d, want 36380", n)
	}
}
