package analysis

import (
	"math"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/workload"
)

func TestFigureDriversRejectUnknownWorkload(t *testing.T) {
	s := suite(t)
	if _, err := s.Figure5("nope"); err == nil {
		t.Error("Figure5 accepted unknown workload")
	}
	if _, err := s.Figure6("nope"); err == nil {
		t.Error("Figure6 accepted unknown workload")
	}
	if _, err := s.Figure7("nope"); err == nil {
		t.Error("Figure7 accepted unknown workload")
	}
	if _, err := s.Figure8("nope"); err == nil {
		t.Error("Figure8 accepted unknown workload")
	}
	if _, err := s.FigurePareto("nope", 4); err == nil {
		t.Error("FigurePareto accepted unknown workload")
	}
	if _, err := s.FigureResponse("nope", 95); err == nil {
		t.Error("FigureResponse accepted unknown workload")
	}
	if _, err := s.FullSpaceFrontier("nope", 2, 2); err == nil {
		t.Error("FullSpaceFrontier accepted unknown workload")
	}
}

// TestFigure5AllWorkloads: the single-node proportionality curves exist
// and are well-formed for every paper workload, not only the three the
// paper plots.
func TestFigure5AllWorkloads(t *testing.T) {
	s := suite(t)
	for _, wl := range workload.PaperNames() {
		series, err := s.Figure5(wl)
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		if len(series) != 3 {
			t.Fatalf("%s: %d series", wl, len(series))
		}
		for _, ser := range series {
			if err := ser.Validate(); err != nil {
				t.Errorf("%s/%s: %v", wl, ser.Label, err)
			}
			// Percent-of-peak curves live in (0, 100].
			for i, y := range ser.Y {
				if y <= 0 || y > 100+1e-9 {
					t.Errorf("%s/%s: y[%d] = %g out of (0,100]", wl, ser.Label, i, y)
				}
			}
			// Terminal point is exactly the peak.
			if ser.Label != "Ideal" && math.Abs(ser.Y[len(ser.Y)-1]-100) > 1e-9 {
				t.Errorf("%s/%s: curve does not end at 100%%", wl, ser.Label)
			}
		}
	}
}

// TestFigureParetoThinningKeepsEndpoints: the plotted subset always
// includes the fastest and the cheapest frontier configuration.
func TestFigureParetoThinningKeepsEndpoints(t *testing.T) {
	s := suite(t)
	full, err := s.FigurePareto(workload.NameEP, 100)
	if err != nil {
		t.Fatal(err)
	}
	thin, err := s.FigurePareto(workload.NameEP, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(thin.Frontier) > 3 {
		t.Errorf("thinned to %d, want <= 3", len(thin.Frontier))
	}
	first := full.Frontier[0].Config.Key()
	last := full.Frontier[len(full.Frontier)-1].Config.Key()
	keys := map[string]bool{}
	for _, pt := range thin.Frontier {
		keys[pt.Config.Key()] = true
	}
	if !keys[first] || !keys[last] {
		t.Errorf("thinning dropped an endpoint: kept %v", keys)
	}
}

func TestFrontierSummaryFormat(t *testing.T) {
	s := suite(t)
	fig, err := s.FigurePareto(workload.NameEP, 4)
	if err != nil {
		t.Fatal(err)
	}
	lines := FrontierSummary(fig.Frontier)
	if len(lines) != len(fig.Frontier) {
		t.Fatalf("%d lines for %d points", len(lines), len(fig.Frontier))
	}
	for _, l := range lines {
		if !strings.Contains(l, "T=") || !strings.Contains(l, "E=") {
			t.Errorf("summary line %q missing fields", l)
		}
	}
}

func TestResponseSpreadErrors(t *testing.T) {
	if _, err := ResponseSpread(nil); err == nil {
		t.Error("empty series accepted")
	}
	ragged := []report.Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{1, 2}},
		{Label: "b", X: []float64{1}, Y: []float64{1}},
	}
	if _, err := ResponseSpread(ragged); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestRenderTable6Content(t *testing.T) {
	s := suite(t)
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderTable6(&b, rows); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"(random numbers/s)/W", "6.048e+06", "1091"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table 6 render missing %q", frag)
		}
	}
}
