package analysis

import "testing"

// TestDegreeStudyGrowth: more node types expand the configuration
// space, cannot shrink the frontier's reach on either axis, and expose
// at least as many sub-linear configurations.
func TestDegreeStudyGrowth(t *testing.T) {
	s := suite(t)
	rows, err := s.DegreeStudy(8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, r := range rows {
		if r.Degree != i+1 {
			t.Errorf("row %d degree = %d", i, r.Degree)
		}
		if r.FrontierSize < 1 {
			t.Errorf("degree %d: empty frontier", r.Degree)
		}
	}
	// Space size grows strictly with degree.
	for i := 1; i < len(rows); i++ {
		if rows[i].SpaceSize <= rows[i-1].SpaceSize {
			t.Errorf("space did not grow: %d -> %d", rows[i-1].SpaceSize, rows[i].SpaceSize)
		}
	}
	// Homogeneous A9 (degree 1): no sub-linear configurations are
	// possible — every config shares the same linear normalized curve.
	if rows[0].Sublinear != 0 {
		// Smaller A9-only configs ARE sub-linear against the larger
		// reference's peak (less absolute power), so this can be
		// non-zero; what must hold is monotone growth with degree.
		t.Logf("degree 1 sublinear = %d", rows[0].Sublinear)
	}
	if rows[2].Sublinear < rows[1].Sublinear {
		t.Errorf("sub-linear count fell with degree: %d -> %d", rows[1].Sublinear, rows[2].Sublinear)
	}
	// A wider palette can only improve (or tie) the frontier's extremes
	// at equal per-type node budget.
	for i := 1; i < len(rows); i++ {
		if rows[i].FastestTime > rows[i-1].FastestTime*(1+1e-9) {
			t.Errorf("degree %d fastest time regressed: %g vs %g",
				rows[i].Degree, rows[i].FastestTime, rows[i-1].FastestTime)
		}
		if rows[i].BestEnergy > rows[i-1].BestEnergy*(1+1e-9) {
			t.Errorf("degree %d best energy regressed: %g vs %g",
				rows[i].Degree, rows[i].BestEnergy, rows[i-1].BestEnergy)
		}
	}
}

func TestDegreeStudyValidation(t *testing.T) {
	s := suite(t)
	if _, err := s.DegreeStudy(0, 1); err == nil {
		t.Error("zero maxPerType accepted")
	}
}
