package analysis

import (
	"strings"
	"testing"
)

func TestWriteSummaryComplete(t *testing.T) {
	s := suite(t)
	var b strings.Builder
	if err := s.WriteSummary(&b, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"Table 4", "Table 6", "Table 7", "Table 8",
		"Fig 9", "Fig 10", "Fig 11", "Fig 12",
		"36380",
		"PPR ratio",
		"memcached", "RSA-2048",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("summary missing %q", frag)
		}
	}
	if len(out) < 2000 {
		t.Errorf("summary suspiciously short: %d bytes", len(out))
	}
}
