package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestHomogeneousScaling: for a compute-bound workload on a homogeneous
// cluster, doubling the node count halves the execution time and leaves
// the total energy unchanged (same work, same per-unit cost, idle
// periods scale inversely with node count).
func TestHomogeneousScaling(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	p, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a9, 4)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	double, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a9, 8)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(float64(double.Time), float64(base.Time)/2) > 1e-9 {
		t.Errorf("time did not halve: %v -> %v", base.Time, double.Time)
	}
	if stats.RelErr(float64(double.Energy), float64(base.Energy)) > 1e-9 {
		t.Errorf("energy changed under replication: %v -> %v", base.Energy, double.Energy)
	}
}

// TestTimeMonotoneInNodes is a property: adding nodes of any type never
// slows the job down.
func TestTimeMonotoneInNodes(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	f := func(aRaw, kRaw uint8, wlIdx uint8) bool {
		names := workload.PaperNames()
		p, err := reg.Lookup(names[int(wlIdx)%len(names)])
		if err != nil {
			return false
		}
		a := int(aRaw%20) + 1
		k := int(kRaw % 8)
		groups := []cluster.Group{cluster.FullNodes(a9, a)}
		if k > 0 {
			groups = append(groups, cluster.FullNodes(k10, k))
		}
		small, err := Evaluate(cluster.MustConfig(groups...), p, Options{})
		if err != nil {
			return false
		}
		groups[0] = cluster.FullNodes(a9, a+1)
		big, err := Evaluate(cluster.MustConfig(groups...), p, Options{})
		if err != nil {
			return false
		}
		return big.Time <= small.Time*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTimeMonotoneInFrequency: raising the core frequency never slows a
// compute-bound job.
func TestTimeMonotoneInFrequency(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	p, err := reg.Lookup(workload.NameBlackscholes)
	if err != nil {
		t.Fatal(err)
	}
	prev := units.Seconds(math.Inf(1))
	for _, fq := range a9.Freq.Steps {
		res, err := Evaluate(cluster.MustConfig(cluster.Group{Type: a9, Count: 1, Cores: a9.Cores, Freq: fq}), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Time >= prev {
			t.Errorf("time not decreasing at %v: %v >= %v", fq, res.Time, prev)
		}
		prev = res.Time
	}
}

// TestCoresHelpComputeBoundOnly: adding active cores speeds up a
// compute-bound workload but cannot speed up a memory-bound one past the
// memory controller limit.
func TestCoresHelpComputeBoundOnly(t *testing.T) {
	cat, reg := paperSetup(t)
	k10, _ := cat.Lookup("K10")
	rsa, err := reg.Lookup(workload.NameRSA) // compute bound
	if err != nil {
		t.Fatal(err)
	}
	x264, err := reg.Lookup(workload.NameX264) // memory bound
	if err != nil {
		t.Fatal(err)
	}
	at := func(p *workload.Profile, cores int) units.Seconds {
		res, err := Evaluate(cluster.MustConfig(cluster.Group{Type: k10, Count: 1, Cores: cores, Freq: k10.FMax()}), p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if at(rsa, 6) >= at(rsa, 3) {
		t.Error("RSA did not speed up with more cores")
	}
	// x264 is memory bound at full cores: T(6) == T(5) (the memory
	// controller is the bottleneck at both counts).
	if stats.RelErr(float64(at(x264, 6)), float64(at(x264, 5))) > 1e-9 {
		t.Error("memory-bound x264 time changed between 5 and 6 cores")
	}
	// But with a single core, the core side binds and time rises.
	if at(x264, 1) <= at(x264, 6) {
		t.Error("x264 on one core not slower than on six")
	}
}

// TestEnergyMonotoneInIdlePower: a node type with higher idle power can
// only raise the configuration's energy, all else equal.
func TestEnergyMonotoneInIdlePower(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	p, err := reg.Lookup(workload.NameJulius)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a9, 2)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hot := *a9
	hot.Name = "A9hot"
	hot.Power.Idle = a9.Power.Idle * 2
	// Same demand vector under the new name.
	d, err := p.Demand("A9")
	if err != nil {
		t.Fatal(err)
	}
	p2 := workload.NewProfile(p.Name, p.Domain, p.Unit, p.JobUnits)
	if err := p2.SetDemand("A9hot", d); err != nil {
		t.Fatal(err)
	}
	res2, err := Evaluate(cluster.MustConfig(cluster.FullNodes(&hot, 2)), p2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Energy <= res1.Energy {
		t.Errorf("doubled idle power did not raise energy: %v vs %v", res2.Energy, res1.Energy)
	}
	if stats.RelErr(float64(res2.Time), float64(res1.Time)) > 1e-12 {
		t.Error("idle power changed execution time")
	}
}

// TestMemFrequencyInvariantOption: with the ablation flag, memory time
// is pinned to the f_max reference and lowering the clock hurts less.
func TestMemFrequencyInvariantOption(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	p, err := reg.Lookup(workload.NameX264)
	if err != nil {
		t.Fatal(err)
	}
	cfgSlow := cluster.MustConfig(cluster.Group{Type: a9, Count: 1, Cores: a9.Cores, Freq: a9.FMin()})
	paper, err := Evaluate(cfgSlow, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	invariant, err := Evaluate(cfgSlow, p, Options{MemFrequencyInvariant: true})
	if err != nil {
		t.Fatal(err)
	}
	// Memory-bound x264 at 0.2 GHz: the paper's literal model stretches
	// memory time by 7x; the invariant variant keeps it at the f_max
	// value, so the job finishes sooner.
	if invariant.Time >= paper.Time {
		t.Errorf("invariant-memory variant %v not faster than paper model %v", invariant.Time, paper.Time)
	}
	// At f_max the two variants are identical.
	cfgFast := cluster.MustConfig(cluster.FullNodes(a9, 1))
	a, err := Evaluate(cfgFast, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(cfgFast, p, Options{MemFrequencyInvariant: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Energy != b.Energy {
		t.Error("model variants differ at f_max")
	}
}

// TestIOArrivalLimitBinds: when the workload's I/O request rate is the
// bottleneck, the NIC bandwidth stops mattering.
func TestIOArrivalLimitBinds(t *testing.T) {
	cat := hardware.DefaultCatalog()
	k10, _ := cat.Lookup("K10")
	mk := func(ioRate units.PerSecond) *workload.Profile {
		p := workload.NewProfile("iotest", workload.DomainSynthetic, "req", 1000)
		p.IORate = ioRate
		if err := p.SetDemand("K10", workload.Demand{
			CoreCycles: 1000,
			IOBytes:    10,
			IOReqs:     1,
			Intensity:  0.5,
		}); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cfg := cluster.MustConfig(cluster.FullNodes(k10, 1))
	// Slow request arrival: 100 req/s -> 10 s for 1000 requests.
	slow, err := Evaluate(cfg, mk(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(float64(slow.Time), 10) > 1e-9 {
		t.Errorf("arrival-limited time %v, want 10 s", slow.Time)
	}
	// Fast arrivals: transfer (10 kB at 125 MB/s) and CPU are both
	// far quicker; time collapses by orders of magnitude.
	fast, err := Evaluate(cfg, mk(1e9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(fast.Time) > 1e-3 {
		t.Errorf("fast-arrival time %v, want sub-millisecond", fast.Time)
	}
}

// TestEvaluateErrors exercises failure paths.
func TestEvaluateErrors(t *testing.T) {
	cat, reg := paperSetup(t)
	a15, _ := cat.Lookup("A15")
	p, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	// Paper workloads do not cover the A15 extension type.
	if _, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a15, 1)), p, Options{}); err == nil {
		t.Error("missing demand accepted")
	}
	bad := workload.NewProfile("empty", workload.DomainSynthetic, "u", 1)
	if _, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a15, 1)), bad, Options{}); err == nil {
		t.Error("invalid profile accepted")
	}
}

// TestWorkSplitProportions: for a two-type mix the work shares follow
// the per-node rates exactly.
func TestWorkSplitProportions(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	p, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a9, 10), cluster.FullNodes(k10, 5)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, g := range res.Groups {
		total += g.Units
	}
	if stats.RelErr(total, p.JobUnits) > 1e-12 {
		t.Errorf("work shares sum to %g, want %g", total, p.JobUnits)
	}
	// Per-node share ratio equals the per-node rate ratio, i.e. both
	// types spend the same time per assigned share.
	perUnitA9 := float64(res.Groups[0].T) / res.Groups[0].UnitsPerNode
	perUnitK10 := float64(res.Groups[1].T) / res.Groups[1].UnitsPerNode
	shareRatio := res.Groups[1].UnitsPerNode / res.Groups[0].UnitsPerNode
	rateRatio := perUnitA9 / perUnitK10
	if stats.RelErr(shareRatio, rateRatio) > 1e-9 {
		t.Errorf("share ratio %g != rate ratio %g", shareRatio, rateRatio)
	}
}
