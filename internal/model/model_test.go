package model

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func paperSetup(t *testing.T) (*hardware.Catalog, *workload.Registry) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatalf("PaperRegistry: %v", err)
	}
	return cat, reg
}

func singleNode(t *testing.T, cat *hardware.Catalog, name string) cluster.Config {
	t.Helper()
	nt, err := cat.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return cluster.MustConfig(cluster.FullNodes(nt, 1))
}

// TestCalibrationRoundTripPPR verifies that the forward model reproduces
// the paper's Table 6 PPR values the demands were calibrated from.
func TestCalibrationRoundTripPPR(t *testing.T) {
	cat, reg := paperSetup(t)
	for _, wl := range workload.PaperNames() {
		p, err := reg.Lookup(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range []string{"A9", "K10"} {
			res, err := Evaluate(singleNode(t, cat, node), p, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", wl, node, err)
			}
			want := workload.PaperPPR[wl][node]
			if got := res.PPR(); stats.RelErr(got, want) > 0.01 {
				t.Errorf("%s on %s: PPR = %.6g, want %.6g (Table 6)", wl, node, got, want)
			}
		}
	}
}

// TestCalibrationRoundTripIPR verifies the paper's Table 7 idle-to-peak
// ratios round-trip through the model.
func TestCalibrationRoundTripIPR(t *testing.T) {
	cat, reg := paperSetup(t)
	for _, wl := range workload.PaperNames() {
		p, err := reg.Lookup(wl)
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range []string{"A9", "K10"} {
			res, err := Evaluate(singleNode(t, cat, node), p, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", wl, node, err)
			}
			want := workload.PaperIPR[wl][node]
			got := float64(res.IdlePower) / float64(res.PeakPower())
			if stats.RelErr(got, want) > 0.01 {
				t.Errorf("%s on %s: IPR = %.4f, want %.4f (Table 7)", wl, node, got, want)
			}
		}
	}
}

// TestRateMatchedSplitEqualizesFinishTimes checks the Section II-D
// invariant that all node types finish together.
func TestRateMatchedSplitEqualizesFinishTimes(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 32), cluster.FullNodes(k10, 12))
	for _, wl := range workload.PaperNames() {
		p, err := reg.Lookup(wl)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(cfg, p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", wl, err)
		}
		for _, g := range res.Groups {
			if math.Abs(float64(g.T-res.Time))/float64(res.Time) > 1e-9 {
				t.Errorf("%s: group %s finishes at %v, job at %v", wl, g.Group.Type.Name, g.T, res.Time)
			}
		}
	}
}

// TestHeterogeneousFasterThanParts confirms adding nodes reduces time.
func TestHeterogeneousFasterThanParts(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	p, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	only9, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a9, 8)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := Evaluate(cluster.MustConfig(cluster.FullNodes(a9, 8), cluster.FullNodes(k10, 2)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mix.Time >= only9.Time {
		t.Errorf("mix time %v not below A9-only time %v", mix.Time, only9.Time)
	}
}

// TestEnergyDecompositionSums checks E_P equals the per-group component sum.
func TestEnergyDecompositionSums(t *testing.T) {
	cat, reg := paperSetup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 3), cluster.FullNodes(k10, 2))
	p, err := reg.Lookup(workload.NameBlackscholes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(cfg, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Joules
	for _, g := range res.Groups {
		sum += units.Joules(float64(g.EnergyPerNode()) * float64(g.Group.Count))
	}
	if stats.RelErr(float64(sum), float64(res.Energy)) > 1e-12 {
		t.Errorf("component sum %v != total %v", sum, res.Energy)
	}
}
