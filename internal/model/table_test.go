package model

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/workload"
)

// footnote4Limits returns the paper's footnote-4 design space — up to
// 10 A9 and 10 K10 nodes with free core counts and DVFS steps, 36,380
// configurations.
func footnote4Limits(t testing.TB) ([]cluster.Limit, *workload.Registry) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	return []cluster.Limit{
		{Type: a9, MaxNodes: 10},
		{Type: k10, MaxNodes: 10},
	}, reg
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return d
	}
	return d / m
}

// TestTableDifferentialPaperSpace pins the fast path to the reference
// model over the full footnote-4 space for every paper workload: the
// ok bit must agree with Evaluate's error, and Time/Energy/BusyPower/
// IdlePower must match within 1e-12 relative (in practice bitwise —
// the test also counts exact matches and requires them to dominate).
func TestTableDifferentialPaperSpace(t *testing.T) {
	limits, reg := footnote4Limits(t)
	for _, name := range workload.PaperNames() {
		wl, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		table := NewTable(wl, Options{})
		n, exact := 0, 0
		err = cluster.Enumerate(limits, func(cfg cluster.Config) bool {
			n++
			fast, ok := table.EvaluateFast(cfg)
			ref, refErr := Evaluate(cfg, wl, Options{})
			if ok != (refErr == nil) {
				t.Fatalf("%s %s: fast ok=%v, reference err=%v", name, cfg, ok, refErr)
			}
			if !ok {
				return true
			}
			if relDiff(float64(fast.Time), float64(ref.Time)) > 1e-12 ||
				relDiff(float64(fast.Energy), float64(ref.Energy)) > 1e-12 ||
				relDiff(float64(fast.BusyPower), float64(ref.BusyPower)) > 1e-12 ||
				relDiff(float64(fast.IdlePower), float64(ref.IdlePower)) > 1e-12 {
				t.Fatalf("%s %s: fast %+v vs reference (T=%v E=%v BP=%v IP=%v)",
					name, cfg, fast, ref.Time, ref.Energy, ref.BusyPower, ref.IdlePower)
			}
			if fast.Time == ref.Time && fast.Energy == ref.Energy &&
				fast.BusyPower == ref.BusyPower && fast.IdlePower == ref.IdlePower {
				exact++
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if want := cluster.SpaceSize(limits); n != want {
			t.Fatalf("%s: enumerated %d configurations, want %d", name, n, want)
		}
		if exact != n {
			t.Errorf("%s: only %d/%d configurations matched bitwise", name, exact, n)
		}
	}
}

// TestTableOptionsAndUnsupported: the MemFrequencyInvariant ablation
// flows through the table, and missing demand vectors surface as
// ok=false exactly like Evaluate's error.
func TestTableOptionsAndUnsupported(t *testing.T) {
	limits, reg := footnote4Limits(t)
	wl, err := reg.Lookup(workload.NameX264)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{MemFrequencyInvariant: true}
	table := NewTable(wl, opt)
	checked := 0
	err = cluster.Enumerate(limits, func(cfg cluster.Config) bool {
		fast, ok := table.EvaluateFast(cfg)
		ref, refErr := Evaluate(cfg, wl, opt)
		if ok != (refErr == nil) {
			t.Fatalf("%s: fast ok=%v, reference err=%v", cfg, ok, refErr)
		}
		if ok && (fast.Time != ref.Time || fast.Energy != ref.Energy) {
			t.Fatalf("%s: ablation mismatch: %v/%v vs %v/%v",
				cfg, fast.Time, fast.Energy, ref.Time, ref.Energy)
		}
		checked++
		return checked < 500
	})
	if err != nil {
		t.Fatal(err)
	}

	// A workload that only knows one node type: configurations touching
	// the other type must come back unsupported.
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	narrow := workload.NewProfile("narrow", workload.DomainSynthetic, "units", 1e6)
	if err := narrow.SetDemand("A9", workload.Demand{CoreCycles: 1e5, MemCycles: 1e4, Intensity: 1}); err != nil {
		t.Fatal(err)
	}
	nt := NewTable(narrow, Options{})
	mixed := cluster.MustConfig(cluster.FullNodes(a9, 2), cluster.FullNodes(k10, 1))
	if _, ok := nt.EvaluateFast(mixed); ok {
		t.Error("mixed configuration with missing K10 demand reported ok")
	}
	pure := cluster.MustConfig(cluster.FullNodes(a9, 2))
	fast, ok := nt.EvaluateFast(pure)
	if !ok {
		t.Fatal("supported configuration reported not ok")
	}
	ref, err := Evaluate(pure, narrow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Time != ref.Time || fast.Energy != ref.Energy {
		t.Errorf("narrow workload mismatch: %v/%v vs %v/%v", fast.Time, fast.Energy, ref.Time, ref.Energy)
	}
}

// TestTableUnitCalcInvariants sanity-checks the memoized entries: the
// per-unit times match unitTime, NodeRate inverts UnitTotal, and
// EnergyPerUnit is positive for supported operating points.
func TestTableUnitCalcInvariants(t *testing.T) {
	_, reg := footnote4Limits(t)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	table := NewTable(wl, Options{})
	for _, cores := range []int{1, a9.Cores} {
		for _, f := range a9.Freq.Steps {
			g := cluster.Group{Type: a9, Count: 3, Cores: cores, Freq: f}
			uc := table.Calc(g)
			if !uc.Supported {
				t.Fatalf("EP on A9 %dc@%v unsupported", cores, f)
			}
			d, err := wl.Demand("A9")
			if err != nil {
				t.Fatal(err)
			}
			core, mem, cpu, io, total := unitTime(g, d, wl.IORate, Options{})
			if uc.UnitCore != core || uc.UnitMem != mem || uc.UnitCPU != cpu ||
				uc.UnitIO != io || uc.UnitTotal != total {
				t.Errorf("unit times differ from unitTime for %dc@%v", cores, f)
			}
			if total > 0 && uc.NodeRate != 1/float64(total) {
				t.Errorf("NodeRate %v != 1/UnitTotal %v", uc.NodeRate, total)
			}
			if uc.EnergyPerUnit <= 0 {
				t.Errorf("EnergyPerUnit %v not positive", uc.EnergyPerUnit)
			}
			// Count must not affect the memoized entry.
			other := table.Calc(cluster.Group{Type: a9, Count: 9, Cores: cores, Freq: f})
			if other != uc {
				t.Error("distinct UnitCalc for same operating point, different count")
			}
		}
	}
}

// TestEvaluateFastZeroAllocs asserts the hot path allocates nothing —
// the property the sweep engine's throughput rests on.
func TestEvaluateFastZeroAllocs(t *testing.T) {
	_, reg := footnote4Limits(t)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 7), cluster.FullNodes(k10, 3))
	table := NewTable(wl, Options{})
	if _, ok := table.EvaluateFast(cfg); !ok {
		t.Fatal("configuration not evaluable")
	}
	var sink FastResult
	allocs := testing.AllocsPerRun(1000, func() {
		sink, _ = table.EvaluateFast(cfg)
	})
	if allocs != 0 {
		t.Errorf("EvaluateFast allocates %.1f objects per call, want 0", allocs)
	}
	if sink.Time <= 0 || sink.Energy <= 0 {
		t.Errorf("suspicious result %+v", sink)
	}
}

// TestTableSnapshotAndMatches: the snapshot covers every choice of the
// limits it was warmed with, returns pointer-identical UnitCalcs and
// bitwise-identical evaluation results without touching the table's
// lock, and Matches enforces the (profile pointer, options) identity
// the shared-table sweep option relies on.
func TestTableSnapshotAndMatches(t *testing.T) {
	limits, reg := footnote4Limits(t)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	table := NewTable(wl, Options{})
	snap := table.Snapshot(limits)

	if snap.JobUnits() != table.JobUnits() {
		t.Fatalf("snapshot JobUnits %g != table %g", snap.JobUnits(), table.JobUnits())
	}
	for _, l := range limits {
		for _, g := range l.Choices() {
			uc, ok := snap.Calc(g)
			if !ok {
				t.Fatalf("snapshot missing calc for %v", g)
			}
			if uc != table.Calc(g) {
				t.Fatalf("snapshot calc for %v is not the table's instance", g)
			}
			fast, ok := table.EvaluateFast(cluster.Config{Groups: []cluster.Group{g}})
			if !ok {
				continue
			}
			sf, ok := snap.EvaluateCalcs([]GroupCalc{{Calc: uc, Count: g.Count}})
			if !ok {
				t.Fatalf("snapshot evaluation failed for %v", g)
			}
			if math.Float64bits(float64(sf.Time)) != math.Float64bits(float64(fast.Time)) ||
				math.Float64bits(float64(sf.Energy)) != math.Float64bits(float64(fast.Energy)) {
				t.Fatalf("snapshot evaluation of %v differs bitwise from the table's", g)
			}
		}
	}

	if !table.Matches(wl, Options{}) {
		t.Fatal("Matches rejected the table's own (workload, options)")
	}
	if table.Matches(wl, Options{MemFrequencyInvariant: true}) {
		t.Fatal("Matches accepted different options")
	}
	other, err := reg.Lookup(workload.NameX264)
	if err != nil {
		t.Fatal(err)
	}
	if table.Matches(other, Options{}) {
		t.Fatal("Matches accepted a different workload profile")
	}
}
