package model

import (
	"math"
	"sync"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/units"
	"repro/internal/workload"
)

// The Table 2 model is linear in assigned work: every per-node time
// component is (per-unit time) x (units per node), and every energy
// component is (power coefficient) x (component time). The per-unit
// times and power coefficients depend only on the operating point
// (node type, active cores, frequency) and the workload's demand
// vector — never on the node count or on which other groups share the
// cluster. A sweep over tens of thousands of configurations therefore
// touches only tens of distinct operating points, and everything
// per-configuration reduces to combining memoized UnitCalc entries
// through the rate-matching closed form u_i ∝ n_i/τ_i.
//
// UnitCalc holds the memoized per-operating-point quantities. The
// Coef* fields are pre-associated exactly as Evaluate's expressions
// ((Intensity*CPUActPerCore)*cores, etc.) so the fast path reproduces
// the reference arithmetic rounding-for-rounding; see EvaluateCalcs.
type UnitCalc struct {
	Type  *hardware.NodeType
	Cores int
	Freq  units.Hertz

	// Supported is false when the workload has no demand vector for the
	// node type; Evaluate fails such configurations and the fast path
	// reports them the same way.
	Supported bool

	// Per-unit component times for one node (τ in the docs): core
	// execution, memory, overlapped CPU response, network I/O, total.
	UnitCore, UnitMem, UnitCPU, UnitIO, UnitTotal units.Seconds

	// NodeRate is 1/UnitTotal (work units per second per node), zero
	// when the unit time is non-finite or non-positive.
	NodeRate float64

	// CoefAct = (Intensity * CPUActPerCore(f)) * cores and
	// CoefStall = CPUStallPerCore(f) * cores, matching the association
	// order of Evaluate's energy expressions.
	CoefAct, CoefStall float64

	// MemW, NetW and IdleW are the (frequency-independent) memory, NIC
	// and idle power draws of the whole node.
	MemW, NetW, IdleW units.Watts

	// EnergyPerUnit is the per-node busy energy per assigned work unit
	// in joules, computed free-form (not bitwise against Evaluate). It
	// is a valid lower-bound ingredient for pruning — total energy is a
	// units-weighted mean of EnergyPerUnit plus non-negative idle
	// extension — but must never feed reported results.
	EnergyPerUnit float64
}

type tableKey struct {
	t     *hardware.NodeType
	cores int
	freq  units.Hertz
}

// Table memoizes UnitCalc entries for one (workload, Options) sweep.
// It is safe for concurrent use; the /v1/frontier handler shares one
// table across its worker pool.
type Table struct {
	wl       *workload.Profile
	opt      Options
	jobUnits float64
	wlValid  bool

	mu    sync.RWMutex
	calcs map[tableKey]*UnitCalc
}

// NewTable builds an empty table for the workload. An invalid profile
// yields a table on which every evaluation reports ok=false, mirroring
// Evaluate's per-configuration validation error.
func NewTable(wl *workload.Profile, opt Options) *Table {
	return &Table{
		wl:       wl,
		opt:      opt,
		jobUnits: wl.JobUnits,
		wlValid:  wl.Validate() == nil,
		calcs:    make(map[tableKey]*UnitCalc),
	}
}

// JobUnits returns the workload's job size (the sweep engine's pruning
// bounds need it).
func (t *Table) JobUnits() float64 { return t.jobUnits }

// Matches reports whether the table was built for exactly this
// (workload, options) pair — the precondition for reusing a
// caller-owned table across sweeps (pareto.SweepOptions.Table).
// Profile identity is by pointer: a table memoizes demand-vector
// derived quantities, so "same name" is not enough.
func (t *Table) Matches(wl *workload.Profile, opt Options) bool {
	return t.wl == wl && t.opt == opt
}

// Snapshot is an immutable, lock-free view of a Table's unit-calc memo.
// It is created after pre-warming every operating point a sweep can
// touch, so readers never hit the Table's RWMutex: the map is copied
// once under the lock and never mutated again, and the goroutine
// creating the snapshot happens-before every worker that reads it
// (workers are started after the snapshot exists). The parallel
// frontier engine shares one Snapshot across all of its workers.
type Snapshot struct {
	jobUnits float64
	calcs    map[tableKey]*UnitCalc
}

// Snapshot pre-warms the table with every (type, cores, freq) operating
// point reachable under limits and returns the immutable view. Node
// counts never participate in the memo key, so warming iterates each
// type's distinct (cores, freq) pairs, not the full choice space.
func (t *Table) Snapshot(limits []cluster.Limit) *Snapshot {
	for _, l := range limits {
		for _, g := range l.OperatingPoints() {
			t.Calc(g)
		}
	}
	t.mu.RLock()
	calcs := make(map[tableKey]*UnitCalc, len(t.calcs))
	for k, v := range t.calcs {
		calcs[k] = v
	}
	t.mu.RUnlock()
	return &Snapshot{jobUnits: t.jobUnits, calcs: calcs}
}

// JobUnits returns the workload's job size.
func (s *Snapshot) JobUnits() float64 { return s.jobUnits }

// Calc returns the memoized UnitCalc for the group's operating point
// without taking any lock, and ok=false when the point was not warmed
// into the snapshot.
func (s *Snapshot) Calc(g cluster.Group) (*UnitCalc, bool) {
	uc, ok := s.calcs[tableKey{t: g.Type, cores: g.Cores, freq: g.Freq}]
	return uc, ok
}

// EvaluateCalcs is Table.EvaluateCalcs on the snapshot: identical
// scalars, no shared mutable state.
func (s *Snapshot) EvaluateCalcs(gcs []GroupCalc) (FastResult, bool) {
	return evaluateCalcs(s.jobUnits, gcs)
}

// Calc returns the memoized UnitCalc for the group's operating point,
// computing it on first use. The group must be valid (enumeration
// pre-validates limits); only (Type, Cores, Freq) participate in the
// key — Count never affects per-unit quantities.
func (t *Table) Calc(g cluster.Group) *UnitCalc {
	k := tableKey{t: g.Type, cores: g.Cores, freq: g.Freq}
	t.mu.RLock()
	uc := t.calcs[k]
	t.mu.RUnlock()
	if uc != nil {
		return uc
	}
	uc = t.build(g)
	t.mu.Lock()
	if prev := t.calcs[k]; prev != nil {
		uc = prev
	} else {
		t.calcs[k] = uc
	}
	t.mu.Unlock()
	return uc
}

func (t *Table) build(g cluster.Group) *UnitCalc {
	uc := &UnitCalc{Type: g.Type, Cores: g.Cores, Freq: g.Freq}
	if !t.wlValid {
		return uc
	}
	d, err := t.wl.Demand(g.Type.Name)
	if err != nil {
		return uc
	}
	core, mem, cpu, io, total := unitTime(g, d, t.wl.IORate, t.opt)
	uc.Supported = true
	uc.UnitCore, uc.UnitMem, uc.UnitCPU, uc.UnitIO, uc.UnitTotal = core, mem, cpu, io, total
	if total.IsFinite() && total > 0 {
		uc.NodeRate = 1 / float64(total)
	}
	pw := g.Type.PowerAt(g.Freq)
	c := float64(g.Cores)
	uc.CoefAct = d.Intensity * float64(pw.CPUActPerCore) * c
	uc.CoefStall = float64(pw.CPUStallPerCore) * c
	uc.MemW, uc.NetW, uc.IdleW = pw.Mem, pw.Net, pw.Idle
	stall := 0.0
	if mem > core {
		stall = float64(mem) - float64(core)
	}
	uc.EnergyPerUnit = uc.CoefAct*float64(core) + uc.CoefStall*stall +
		float64(pw.Mem)*float64(mem) + float64(pw.Net)*float64(io) +
		float64(pw.Idle)*float64(total)
	return uc
}

// FastResult is the scalar outcome of the allocation-free fast path:
// exactly the (Time, Energy, BusyPower, IdlePower) fields of Result,
// bitwise-equal to Evaluate's, without the per-group breakdown.
type FastResult struct {
	Time      units.Seconds
	Energy    units.Joules
	BusyPower units.Watts
	IdlePower units.Watts
}

// GroupCalc pairs a memoized operating point with a node count — the
// sweep engine's pre-resolved form of cluster.Group.
type GroupCalc struct {
	Calc  *UnitCalc
	Count int
}

// maxStackGroups bounds the group count evaluated without heap
// allocation; real catalogs have at most a handful of node types.
const maxStackGroups = 16

// EvaluateFast runs the model for one configuration through the
// memoized table, returning ok=false exactly when Evaluate would fail
// (missing demand vector, zero execution rate, invalid workload). The
// caller is responsible for cfg being valid — enumeration-produced
// configurations always are — since no per-config Validate runs here.
// Scalars are bitwise-identical to Evaluate's; see EvaluateCalcs.
func (t *Table) EvaluateFast(cfg cluster.Config) (FastResult, bool) {
	var buf [maxStackGroups]GroupCalc
	gcs := buf[:0]
	if len(cfg.Groups) > maxStackGroups {
		gcs = make([]GroupCalc, 0, len(cfg.Groups))
	}
	for _, g := range cfg.Groups {
		uc := t.Calc(g)
		if !uc.Supported {
			return FastResult{}, false
		}
		gcs = append(gcs, GroupCalc{Calc: uc, Count: g.Count})
	}
	if len(gcs) == 0 {
		return FastResult{}, false
	}
	return evaluateCalcs(t.jobUnits, gcs)
}

// EvaluateCalcs is EvaluateFast for pre-resolved groups. The entries
// MUST be ordered by node-type name — the canonical cluster.NewConfig
// order — with Count >= 1 each: floating-point accumulation follows
// the group order, and matching Evaluate bit for bit requires the same
// order. Unsupported entries yield ok=false.
func (t *Table) EvaluateCalcs(gcs []GroupCalc) (FastResult, bool) {
	return evaluateCalcs(t.jobUnits, gcs)
}

// evaluateCalcs mirrors Evaluate statement for statement — the same
// expression shapes, explicit conversions and accumulation order — so
// that every intermediate rounding matches and the returned scalars
// are bitwise-equal to the reference, not merely close. That exactness
// is what lets the sweep engine's frontier (and the goldens derived
// from it) coincide with the reference path down to the last bit.
func evaluateCalcs(jobUnits float64, gcs []GroupCalc) (FastResult, bool) {
	var rateBuf, tBuf [maxStackGroups]float64
	groupRate := rateBuf[:0]
	groupT := tBuf[:0]
	if len(gcs) > maxStackGroups {
		groupRate = make([]float64, 0, len(gcs))
		groupT = make([]float64, 0, len(gcs))
	}

	totalRate := 0.0
	for _, gc := range gcs {
		if !gc.Calc.Supported {
			return FastResult{}, false
		}
		rate := gc.Calc.NodeRate * float64(gc.Count)
		totalRate += rate
		groupRate = append(groupRate, rate)
	}
	if totalRate <= 0 || math.IsNaN(totalRate) {
		return FastResult{}, false
	}

	var res FastResult
	var totalEnergy units.Joules
	var tp units.Seconds
	for i, gc := range gcs {
		uc := gc.Calc
		share := groupRate[i] / totalRate
		unitsGroup := jobUnits * share
		upn := unitsGroup / float64(gc.Count)
		tCore := units.Seconds(float64(uc.UnitCore) * upn)
		tMem := units.Seconds(float64(uc.UnitMem) * upn)
		tIO := units.Seconds(float64(uc.UnitIO) * upn)
		tT := units.Seconds(float64(uc.UnitTotal) * upn)
		var tStall units.Seconds
		if tMem > tCore {
			tStall = tMem - tCore
		}

		eAct := units.Joules(uc.CoefAct * float64(tCore))
		eStall := units.Joules(uc.CoefStall * float64(tStall))
		eMem := uc.MemW.Energy(tMem)
		eIO := uc.NetW.Energy(tIO)
		eIdle := uc.IdleW.Energy(tT)
		perNode := eAct + eStall + eMem + eIO + eIdle

		totalEnergy += units.Joules(float64(perNode) * float64(gc.Count))
		if tT > tp {
			tp = tT
		}
		groupT = append(groupT, float64(tT))
		res.IdlePower += units.Watts(float64(uc.IdleW) * float64(gc.Count))
	}

	// Idle-extension second pass, as in Evaluate: groups finishing early
	// burn idle power until T_P.
	for i, gc := range gcs {
		if units.Seconds(groupT[i]) < tp {
			extra := units.Seconds(float64(tp) - groupT[i])
			add := gc.Calc.IdleW.Energy(extra)
			totalEnergy += units.Joules(float64(add) * float64(gc.Count))
		}
	}

	res.Time = tp
	res.Energy = totalEnergy
	if tp > 0 {
		res.BusyPower = totalEnergy.Over(tp)
	}
	return res, true
}

// Materialize runs the full reference model for one configuration,
// producing the per-group breakdown. The sweep engine calls it only
// for frontier survivors.
func (t *Table) Materialize(cfg cluster.Config) (Result, error) {
	return Evaluate(cfg, t.wl, t.opt)
}
