// Package model implements the measurement-driven time-energy model of
// Table 2 of the paper (originally from the authors' ICPP'14 work, ref
// [31]): per-node-type response times with out-of-order overlap between
// core and memory activity and DMA overlap between CPU and network I/O,
// rate-matched work splitting across heterogeneous node types, and the
// energy decomposition into active, stall, memory, I/O and idle
// components.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options tune model variants. The zero value is the paper's model.
type Options struct {
	// MemFrequencyInvariant, when set, makes memory time independent of
	// the core clock (T_mem referenced at f_max) instead of the paper's
	// literal T_mem = cycles_mem / f. The paper measures cycles at each
	// operating frequency so its formula is self-consistent; this flag
	// exists as an ablation for demand vectors referenced at f_max only.
	MemFrequencyInvariant bool
}

// GroupResult is the model outcome for one homogeneous group of a
// configuration. Times are wall-clock for the group's share of the job;
// energies are per node.
type GroupResult struct {
	Group cluster.Group
	// Units is the work assigned to the whole group; UnitsPerNode is the
	// per-node share.
	Units, UnitsPerNode float64
	// Component times (per node): core execution, memory, the overlapped
	// CPU response, network I/O, stall (non-overlapped memory), and the
	// group's total response time T_i.
	TCore, TMem, TCPU, TIO, TStall, T units.Seconds
	// Energy components per node (Table 2).
	ECPUAct, ECPUStall, EMem, EIO, EIdle units.Joules
	// BusyPower is the average per-node power while executing,
	// (E_total per node)/T.
	BusyPower units.Watts
}

// EnergyPerNode sums the per-node components.
func (g GroupResult) EnergyPerNode() units.Joules {
	return g.ECPUAct + g.ECPUStall + g.EMem + g.EIO + g.EIdle
}

// Result is the model outcome for a configuration running one job.
type Result struct {
	Config   cluster.Config
	Workload string
	// Time is the job's execution time T_P = max_i T_i.
	Time units.Seconds
	// Energy is the job's total energy E_P across all nodes.
	Energy units.Joules
	// IdlePower is the configuration's total idle power.
	IdlePower units.Watts
	// BusyPower is the cluster-average power while executing, E_P/T_P.
	BusyPower units.Watts
	// Throughput is work units per second while executing.
	Throughput units.PerSecond
	// Groups holds the per-type breakdown.
	Groups []GroupResult
}

// unitTime returns the per-work-unit component times for one node of the
// group: core, memory, CPU (overlap), I/O and total.
func unitTime(g cluster.Group, d workload.Demand, ioRate units.PerSecond, opt Options) (core, mem, cpu, io, total units.Seconds) {
	f := g.Freq
	coreCapacity := units.Hertz(float64(f) * float64(g.Cores))
	core = d.CoreCycles.Time(coreCapacity)
	if opt.MemFrequencyInvariant {
		mem = d.MemCycles.Time(g.Type.FMax())
	} else {
		mem = d.MemCycles.Time(f)
	}
	cpu = core
	if mem > cpu {
		cpu = mem
	}
	io = d.IOBytes.TransferTime(g.Type.NICBandwidth)
	if d.IOReqs > 0 && ioRate > 0 {
		wait := units.Seconds(d.IOReqs / float64(ioRate))
		if wait > io {
			io = wait
		}
	}
	total = cpu
	if io > total {
		total = io
	}
	return core, mem, cpu, io, total
}

// Evaluate runs the time-energy model for one job of profile p on
// configuration cfg.
//
// Work is split across node types by rate matching (Section II-D: "the
// amount of workload executed by nodes of different types is determined
// by matching the execution rates among the different types of nodes,
// such that all nodes finish executing at the same time"). Because every
// time component is linear in the assigned units, T_i = u_i * tau_i with
// tau_i the per-unit time, and assigning u_i proportional to n_i/tau_i
// makes all T_i equal.
func Evaluate(cfg cluster.Config, p *workload.Profile, opt Options) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}

	type groupCalc struct {
		g         cluster.Group
		d         workload.Demand
		unitCore  units.Seconds
		unitMem   units.Seconds
		unitCPU   units.Seconds
		unitIO    units.Seconds
		unitTotal units.Seconds
		nodeRate  float64 // units per second per node
		groupRate float64
	}
	calcs := make([]groupCalc, 0, len(cfg.Groups))
	totalRate := 0.0
	for _, g := range cfg.Groups {
		d, err := p.Demand(g.Type.Name)
		if err != nil {
			return Result{}, fmt.Errorf("model: %w", err)
		}
		core, mem, cpu, io, total := unitTime(g, d, p.IORate, opt)
		gc := groupCalc{g: g, d: d, unitCore: core, unitMem: mem, unitCPU: cpu, unitIO: io, unitTotal: total}
		if total.IsFinite() && total > 0 {
			gc.nodeRate = 1 / float64(total)
			gc.groupRate = gc.nodeRate * float64(g.Count)
		}
		totalRate += gc.groupRate
		calcs = append(calcs, gc)
	}
	if totalRate <= 0 || math.IsNaN(totalRate) {
		return Result{}, errors.New("model: configuration has zero execution rate for this workload")
	}

	res := Result{Config: cfg, Workload: p.Name, IdlePower: cfg.IdlePower()}
	var totalEnergy units.Joules
	var tp units.Seconds
	for _, gc := range calcs {
		share := gc.groupRate / totalRate
		unitsGroup := p.JobUnits * share
		var gr GroupResult
		gr.Group = gc.g
		gr.Units = unitsGroup
		if gc.g.Count > 0 {
			gr.UnitsPerNode = unitsGroup / float64(gc.g.Count)
		}
		gr.TCore = units.Seconds(float64(gc.unitCore) * gr.UnitsPerNode)
		gr.TMem = units.Seconds(float64(gc.unitMem) * gr.UnitsPerNode)
		gr.TCPU = units.Seconds(float64(gc.unitCPU) * gr.UnitsPerNode)
		gr.TIO = units.Seconds(float64(gc.unitIO) * gr.UnitsPerNode)
		gr.T = units.Seconds(float64(gc.unitTotal) * gr.UnitsPerNode)
		if gr.TMem > gr.TCore {
			gr.TStall = gr.TMem - gr.TCore
		}

		pw := gc.g.Type.PowerAt(gc.g.Freq)
		c := float64(gc.g.Cores)
		gr.ECPUAct = units.Joules(gc.d.Intensity * float64(pw.CPUActPerCore) * c * float64(gr.TCore))
		gr.ECPUStall = units.Joules(float64(pw.CPUStallPerCore) * c * float64(gr.TStall))
		gr.EMem = pw.Mem.Energy(gr.TMem)
		gr.EIO = pw.Net.Energy(gr.TIO)
		gr.EIdle = pw.Idle.Energy(gr.T)

		totalEnergy += units.Joules(float64(gr.EnergyPerNode()) * float64(gc.g.Count))
		if gr.T > tp {
			tp = gr.T
		}
		if gr.T > 0 {
			gr.BusyPower = gr.EnergyPerNode().Over(gr.T)
		}
		res.Groups = append(res.Groups, gr)
	}

	// Idle groups (zero assigned work) still burn idle power for the
	// duration of the job; account for it now that T_P is known.
	for i := range res.Groups {
		gr := &res.Groups[i]
		if gr.T < tp {
			extra := units.Seconds(float64(tp) - float64(gr.T))
			add := gr.Group.Type.Power.Idle.Energy(extra)
			gr.EIdle += add
			totalEnergy += units.Joules(float64(add) * float64(gr.Group.Count))
			gr.T = tp
			gr.BusyPower = gr.EnergyPerNode().Over(gr.T)
		}
	}

	res.Time = tp
	res.Energy = totalEnergy
	if tp > 0 {
		res.BusyPower = totalEnergy.Over(tp)
		res.Throughput = units.PerSecond(p.JobUnits / float64(tp))
	}
	return res, nil
}

// PeakPower returns the modeled peak power of the configuration for this
// workload: the average power when utilization is 1 (Section II-B,
// P_peak = E(U=1)/T).
func (r Result) PeakPower() units.Watts { return r.BusyPower }

// PPR returns the performance-to-power ratio at full utilization:
// throughput per watt of busy power (Section II-B).
func (r Result) PPR() float64 {
	if r.BusyPower <= 0 {
		return 0
	}
	return float64(r.Throughput) / float64(r.BusyPower)
}

// EnergyPerUnit returns joules per unit of work.
func (r Result) EnergyPerUnit(jobUnits float64) units.Joules {
	if jobUnits <= 0 {
		return 0
	}
	return units.Joules(float64(r.Energy) / jobUnits)
}

// EDP returns the energy-delay product E_P * T_P in joule-seconds — the
// classic scalarization of the paper's time-energy trade-off. Lower is
// better; unlike energy alone it penalizes configurations that save
// joules by running long.
func (r Result) EDP() float64 {
	return float64(r.Energy) * float64(r.Time)
}

// ED2P returns the energy-delay-squared product E_P * T_P^2, which
// weights latency more heavily than EDP (appropriate when deadlines
// dominate, as in the paper's response-time analysis).
func (r Result) ED2P() float64 {
	return float64(r.Energy) * float64(r.Time) * float64(r.Time)
}
