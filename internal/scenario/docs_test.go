package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fleet"
)

// extractYAMLBlocks pulls every fenced ```yaml block out of a markdown
// file, with the line each starts on for error messages.
func extractYAMLBlocks(t *testing.T, path string) []struct {
	line int
	src  string
} {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []struct {
		line int
		src  string
	}
	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```yaml" {
			continue
		}
		start := i + 1
		var body []string
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		blocks = append(blocks, struct {
			line int
			src  string
		}{line: start + 1, src: strings.Join(body, "\n")})
	}
	return blocks
}

// TestDocScenariosRun loads every ```yaml block in docs/SCENARIOS.md as
// a complete scenario, builds it and runs it, so the schema reference
// cannot drift from the implementation. Fragments that are not full
// scenarios must use plain ``` fences in the doc.
func TestDocScenariosRun(t *testing.T) {
	catalog, registry := testEnv(t)
	blocks := extractYAMLBlocks(t, filepath.Join("..", "..", "docs", "SCENARIOS.md"))
	if len(blocks) < 5 {
		t.Fatalf("only %d yaml blocks found in docs/SCENARIOS.md; fences renamed?", len(blocks))
	}
	for _, b := range blocks {
		b := b
		t.Run(fmt.Sprintf("line%d", b.line), func(t *testing.T) {
			sc, err := Parse([]byte(b.src))
			if err != nil {
				t.Fatalf("docs/SCENARIOS.md block at line %d does not parse: %v", b.line, err)
			}
			spec, err := sc.Build(catalog, registry)
			if err != nil {
				t.Fatalf("docs/SCENARIOS.md block at line %d does not build: %v", b.line, err)
			}
			sim, err := fleet.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatalf("docs/SCENARIOS.md block at line %d does not run: %v", b.line, err)
			}
			if fails := sc.CheckAll(res.Summary); len(fails) != 0 {
				t.Errorf("docs/SCENARIOS.md block at line %d fails its own assertions: %v", b.line, fails)
			}
		})
	}
}

// TestExampleScenariosLoadAndRun does the same for every shipped file
// in examples/scenarios/.
func TestExampleScenariosLoadAndRun(t *testing.T) {
	catalog, registry := testEnv(t)
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("only %d example scenarios found", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, err := sc.Build(catalog, registry)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := fleet.New(spec)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if fails := sc.CheckAll(res.Summary); len(fails) != 0 {
				t.Errorf("%s fails its own assertions: %v", path, fails)
			}
		})
	}
}
