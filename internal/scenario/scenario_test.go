package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/hardware"
	"repro/internal/workload"
)

func testEnv(t *testing.T) (*hardware.Catalog, *workload.Registry) {
	t.Helper()
	catalog := hardware.DefaultCatalog()
	registry, err := workload.PaperRegistry(catalog)
	if err != nil {
		t.Fatal(err)
	}
	return catalog, registry
}

const fullScenario = `
name: ep-mixed
description: mixed fleet with chaos, timed events and assertions
workload: EP
seed: 11
duration: 5m
slice: 2s
utilization: 0.7
fleet:
  - type: A9
    count: 8
  - type: K10
    count: 2
chaos:
  mtbf: 20m
  mttr: 3m
  straggler_prob: 0.1
  straggler_slowdown: 1.5
events:
  - at: 60s
    action: fail
    target:
      type: K10
    for: 30s
  - at: 3m
    action: set_utilization
    utilization: 0.3
assertions:
  - metric: availability
    op: "<"
    value: 1
  - metric: lost_units
    op: ">="
    value: 0
`

func TestParseFullScenario(t *testing.T) {
	sc, err := Parse([]byte(fullScenario))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "ep-mixed" || sc.Workload != "EP" || sc.Seed != 11 {
		t.Errorf("header decoded wrong: %+v", sc)
	}
	if float64(sc.Duration) != 300 || float64(sc.Slice) != 2 || sc.Utilization != 0.7 {
		t.Errorf("durations decoded wrong: %+v", sc)
	}
	if len(sc.Fleet) != 2 || sc.Fleet[0].Type != "A9" || sc.Fleet[0].Count != 8 {
		t.Errorf("fleet decoded wrong: %+v", sc.Fleet)
	}
	if !sc.Chaos.Enabled || float64(sc.Chaos.MTBF) != 1200 || sc.Chaos.StragglerSlowdown != 1.5 {
		t.Errorf("chaos decoded wrong: %+v", sc.Chaos)
	}
	if len(sc.Events) != 2 {
		t.Fatalf("events decoded wrong: %+v", sc.Events)
	}
	ev := sc.Events[0]
	if float64(ev.At) != 60 || ev.Action != fleet.ActionFail ||
		ev.Target.Type != "K10" || float64(ev.For) != 30 {
		t.Errorf("event[0] decoded wrong: %+v", ev)
	}
	if sc.Events[1].Utilization != 0.3 {
		t.Errorf("event[1] decoded wrong: %+v", sc.Events[1])
	}
	if len(sc.Asserts) != 2 || sc.Asserts[0].Metric != "availability" || sc.Asserts[0].Op != "<" {
		t.Errorf("assertions decoded wrong: %+v", sc.Asserts)
	}
}

func TestBuildAndRun(t *testing.T) {
	catalog, registry := testEnv(t)
	sc, err := Parse([]byte(fullScenario))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		t.Fatal(err)
	}
	if spec.NodeCount() != 10 {
		t.Fatalf("spec has %d nodes, want 10", spec.NodeCount())
	}
	sim, err := fleet.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fails := sc.CheckAll(res.Summary); len(fails) != 0 {
		t.Errorf("assertions failed: %v", fails)
	}
}

func TestWeightedFleet(t *testing.T) {
	catalog, registry := testEnv(t)
	sc, err := Parse([]byte(`
workload: EP
duration: 10s
nodes: 100
fleet:
  - type: A9
    weight: 3
  - type: K10
    weight: 1
`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Templates[0].Count != 75 || spec.Templates[1].Count != 25 {
		t.Errorf("weights 3:1 over 100 gave %d:%d",
			spec.Templates[0].Count, spec.Templates[1].Count)
	}
}

func TestWeightedFleetLargestRemainder(t *testing.T) {
	catalog, registry := testEnv(t)
	sc, err := Parse([]byte(`
workload: EP
duration: 10s
nodes: 10
fleet:
  - type: A9
    weight: 1
  - type: K10
    weight: 2
`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		t.Fatal(err)
	}
	// 10/3 = 3.33 and 6.67: largest remainder gives the extra node to K10.
	if spec.Templates[0].Count+spec.Templates[1].Count != 10 {
		t.Errorf("weighted counts do not sum to the total: %+v", spec.Templates)
	}
	if spec.Templates[0].Count != 3 || spec.Templates[1].Count != 7 {
		t.Errorf("weights 1:2 over 10 gave %d:%d",
			spec.Templates[0].Count, spec.Templates[1].Count)
	}
}

func TestMixedCountAndWeight(t *testing.T) {
	catalog, registry := testEnv(t)
	sc, err := Parse([]byte(`
workload: EP
duration: 10s
nodes: 20
fleet:
  - type: K10
    count: 4
  - type: A9
    weight: 1
`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Templates[0].Count != 4 || spec.Templates[1].Count != 16 {
		t.Errorf("explicit 4 + weighted rest over 20 gave %d:%d",
			spec.Templates[0].Count, spec.Templates[1].Count)
	}
}

func TestTemplateOperatingPoint(t *testing.T) {
	catalog, registry := testEnv(t)
	sc, err := Parse([]byte(`
workload: EP
duration: 10s
fleet:
  - type: A9
    count: 4
    cores: 2
    freq: 800MHz
`))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		t.Fatal(err)
	}
	g := spec.Templates[0]
	if g.Cores != 2 || float64(g.Freq) != 800e6 {
		t.Errorf("operating point = %d cores at %v", g.Cores, g.Freq)
	}
}

func TestSchemaErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"missing workload", "duration: 10s\nfleet:\n  - type: A9\n    count: 1\n", "workload"},
		{"missing duration", "workload: EP\nfleet:\n  - type: A9\n    count: 1\n", "duration"},
		{"missing fleet", "workload: EP\nduration: 10s\n", "fleet"},
		{"unknown top key", "workload: EP\nduration: 10s\nflete:\n  - type: A9\n    count: 1\n", `unknown field "flete"`},
		{"bad duration", "workload: EP\nduration: tomorrow\nfleet:\n  - type: A9\n    count: 1\n", "not a duration"},
		{"bad number", "workload: EP\nduration: 10s\nutilization: lots\nfleet:\n  - type: A9\n    count: 1\n", "not a number"},
		{"bad seed", "workload: EP\nduration: 10s\nseed: -4\nfleet:\n  - type: A9\n    count: 1\n", "seed"},
		{"template no type", "workload: EP\nduration: 10s\nfleet:\n  - count: 1\n", "fleet[0].type"},
		{"count and weight", "workload: EP\nduration: 10s\nfleet:\n  - type: A9\n    count: 1\n    weight: 2\n", "exactly one of count and weight"},
		{"neither count nor weight", "workload: EP\nduration: 10s\nfleet:\n  - type: A9\n", "exactly one of count and weight"},
		{"bad freq", "workload: EP\nduration: 10s\nfleet:\n  - type: A9\n    count: 1\n    freq: fast\n", "not a frequency"},
		{"unknown chaos key", "workload: EP\nduration: 10s\nchaos:\n  mtbz: 10s\nfleet:\n  - type: A9\n    count: 1\n", `unknown field "mtbz"`},
		{"event no action", "workload: EP\nduration: 10s\nevents:\n  - at: 1s\nfleet:\n  - type: A9\n    count: 1\n", "action"},
		{"bad target", "workload: EP\nduration: 10s\nevents:\n  - at: 1s\n    action: fail\n    target: some\nfleet:\n  - type: A9\n    count: 1\n", "not a target"},
		{"bad assert metric", "workload: EP\nduration: 10s\nassertions:\n  - metric: vibes\n    op: \">\"\n    value: 0\nfleet:\n  - type: A9\n    count: 1\n", "unknown metric"},
		{"bad assert op", "workload: EP\nduration: 10s\nassertions:\n  - metric: nodes\n    op: \"~=\"\n    value: 0\nfleet:\n  - type: A9\n    count: 1\n", "unknown operator"},
		{"fleet not a list", "workload: EP\nduration: 10s\nfleet:\n  type: A9\n", "expected a list"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.src))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	catalog, registry := testEnv(t)
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown workload", "workload: nope\nduration: 10s\nfleet:\n  - type: A9\n    count: 1\n", "workload"},
		{"unknown node type", "workload: EP\nduration: 10s\nfleet:\n  - type: Z80\n    count: 1\n", "fleet[0]"},
		{"weights without total", "workload: EP\nduration: 10s\nfleet:\n  - type: A9\n    weight: 1\n", "nodes total"},
		{"counts contradict total", "workload: EP\nduration: 10s\nnodes: 5\nfleet:\n  - type: A9\n    count: 4\n", "sum to 4"},
		{"bad cores", "workload: EP\nduration: 10s\nfleet:\n  - type: A9\n    count: 1\n    cores: 99\n", "cores"},
		{"bad freq level", "workload: EP\nduration: 10s\nfleet:\n  - type: A9\n    count: 1\n    freq: 1.23GHz\n", "unsupported frequency"},
		{"event past horizon", "workload: EP\nduration: 10s\nevents:\n  - at: 60s\n    action: fail\nfleet:\n  - type: A9\n    count: 1\n", "outside"},
	}
	for _, tc := range cases {
		sc, err := Parse([]byte(tc.src))
		if err != nil {
			t.Errorf("%s: parse failed early: %v", tc.name, err)
			continue
		}
		_, err = sc.Build(catalog, registry)
		if err == nil {
			t.Errorf("%s: built", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestAssertionChecks(t *testing.T) {
	s := fleet.Summary{Nodes: 10, CompletedUnits: 100}
	pass := []Assertion{
		{Metric: "nodes", Op: "==", Value: 10},
		{Metric: "nodes", Op: ">=", Value: 10},
		{Metric: "nodes", Op: "<", Value: 11},
		{Metric: "completed_units", Op: "!=", Value: 0},
		{Metric: "completed_units", Op: "==", Value: 100.4, Tolerance: 0.5},
	}
	for _, a := range pass {
		if err := a.Check(s); err != nil {
			t.Errorf("%v: %v", a, err)
		}
	}
	fail := []Assertion{
		{Metric: "nodes", Op: ">", Value: 10},
		{Metric: "completed_units", Op: "==", Value: 99},
		{Metric: "completed_units", Op: "!=", Value: 100.1, Tolerance: 0.5},
	}
	for _, a := range fail {
		if err := a.Check(s); err == nil {
			t.Errorf("%v: passed", a)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.yaml")
	if err := os.WriteFile(path, []byte(fullScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "ep-mixed" {
		t.Errorf("loaded name %q", sc.Name)
	}
	if _, err := Load(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Error("loading a missing file succeeded")
	}
}
