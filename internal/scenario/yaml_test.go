package scenario

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) yamlValue {
	t.Helper()
	v, err := parseYAML([]byte(src))
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return v
}

func scalarText(t *testing.T, v yamlValue) string {
	t.Helper()
	s, ok := v.(scalar)
	if !ok {
		t.Fatalf("expected scalar, got %T", v)
	}
	return s.text
}

func TestParseMapping(t *testing.T) {
	v := mustParse(t, `
name: test
count: 3
nested:
  inner: yes
  deeper:
    leaf: 1.5
`)
	m := v.(map[string]yamlValue)
	if got := scalarText(t, m["name"]); got != "test" {
		t.Errorf("name = %q", got)
	}
	nested := m["nested"].(map[string]yamlValue)
	deeper := nested["deeper"].(map[string]yamlValue)
	if got := scalarText(t, deeper["leaf"]); got != "1.5" {
		t.Errorf("leaf = %q", got)
	}
}

func TestParseSequences(t *testing.T) {
	v := mustParse(t, `
plain:
  - a
  - b
maps:
  - type: A9
    count: 8
  - type: K10
    count: 2
dash:
  -
    k: v
`)
	m := v.(map[string]yamlValue)
	plain := m["plain"].([]yamlValue)
	if len(plain) != 2 || scalarText(t, plain[1]) != "b" {
		t.Errorf("plain = %v", plain)
	}
	maps := m["maps"].([]yamlValue)
	if len(maps) != 2 {
		t.Fatalf("maps has %d items", len(maps))
	}
	first := maps[0].(map[string]yamlValue)
	if scalarText(t, first["type"]) != "A9" || scalarText(t, first["count"]) != "8" {
		t.Errorf("first map item = %v", first)
	}
	dash := m["dash"].([]yamlValue)
	if scalarText(t, dash[0].(map[string]yamlValue)["k"]) != "v" {
		t.Errorf("dash item = %v", dash[0])
	}
}

func TestParseCommentsAndQuotes(t *testing.T) {
	v := mustParse(t, `
# leading comment
name: "hello # not a comment"  # trailing comment
single: 'it''s quoted'
escaped: "line\nbreak"
url: http://example.com/x#fragment
empty:
`)
	m := v.(map[string]yamlValue)
	if got := scalarText(t, m["name"]); got != "hello # not a comment" {
		t.Errorf("name = %q", got)
	}
	if got := scalarText(t, m["single"]); got != "it's quoted" {
		t.Errorf("single = %q", got)
	}
	if got := scalarText(t, m["escaped"]); got != "line\nbreak" {
		t.Errorf("escaped = %q", got)
	}
	// A '#' not preceded by whitespace is content, not a comment.
	if got := scalarText(t, m["url"]); got != "http://example.com/x#fragment" {
		t.Errorf("url = %q", got)
	}
	if got := scalarText(t, m["empty"]); got != "" {
		t.Errorf("empty = %q", got)
	}
}

func TestParseDocumentMarker(t *testing.T) {
	v := mustParse(t, "---\nkey: value\n")
	if got := scalarText(t, v.(map[string]yamlValue)["key"]); got != "value" {
		t.Errorf("key = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "empty document"},
		{"tabs", "key:\n\tvalue: 1\n", "tabs"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"bad indent", "a: 1\n   b: 2\n", "indentation"},
		{"seq in map", "a: 1\n- b\n", "sequence item inside mapping"},
		{"map in seq", "- a\nb: 1\n", "sequence"},
		{"no colon", "just a line\n", "key: value"},
		{"empty key", ": 1\n", "empty mapping key"},
		{"flow map", "a: {b: 1}\n", "flow collections"},
		{"flow seq", "a: [1, 2]\n", "flow collections"},
		{"anchor", "a: &x 1\n", "anchors"},
		{"block scalar", "a: |\n  text\n", "block scalars"},
		{"unterminated quote", "a: \"open\n", "unterminated"},
		{"bad escape", `a: "\q"` + "\n", "unsupported escape"},
		{"multi doc", "a: 1\n---\nb: 2\n", "multiple documents"},
		{"empty seq item", "list:\n  -\nnext: 1\n", "empty sequence item"},
	}
	for _, tc := range cases {
		if _, err := parseYAML([]byte(tc.src)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseErrorsCarryLineNumbers(t *testing.T) {
	_, err := parseYAML([]byte("a: 1\nb: 2\nb: 3\n"))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error %v does not carry line 3", err)
	}
}
