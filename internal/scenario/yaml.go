// Package scenario implements the declarative scenario language of the
// fleet simulator: a YAML subset parsed with no external dependencies,
// a typed schema with path-tracked errors, and a builder that turns a
// scenario into a runnable fleet.Spec plus end-of-run assertions.
//
// The YAML subset covers what scenario files need and nothing more:
// block mappings, block sequences (including `- key: value` inline map
// items), plain and quoted scalars, comments and blank lines. Anchors,
// aliases, flow collections, multi-line scalars, multiple documents and
// tabs are rejected with line-numbered errors.
package scenario

import (
	"fmt"
	"strings"
)

// yamlValue is the untyped parse result: map[string]yamlValue,
// []yamlValue, or scalar (a raw string; the schema layer types it).
type yamlValue any

// scalar is a leaf value with its source line for error reporting.
type scalar struct {
	text string
	line int
}

type yamlLine struct {
	num    int // 1-based source line
	indent int
	text   string // comment-stripped, right-trimmed content
}

// parseYAML parses one document of the YAML subset.
func parseYAML(src []byte) (yamlValue, error) {
	lines, err := splitYAMLLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("yaml: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("yaml: line %d: unexpected content %q after document (check indentation)", l.num, l.text)
	}
	return v, nil
}

func splitYAMLLines(src string) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(src, "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("yaml: line %d: tabs are not allowed, use spaces", num)
		}
		text, err := stripYAMLComment(raw, num)
		if err != nil {
			return nil, err
		}
		trimmed := strings.TrimLeft(text, " ")
		if trimmed == "" {
			continue
		}
		if trimmed == "---" {
			if len(out) > 0 {
				return nil, fmt.Errorf("yaml: line %d: multiple documents are not supported", num)
			}
			continue
		}
		out = append(out, yamlLine{
			num:    num,
			indent: len(text) - len(trimmed),
			text:   strings.TrimRight(trimmed, " "),
		})
	}
	return out, nil
}

// stripYAMLComment removes a trailing comment: a '#' outside quotes,
// at the start of the line or preceded by whitespace.
func stripYAMLComment(raw string, num int) (string, error) {
	var quote byte
	for i := 0; i < len(raw); i++ {
		c := raw[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++ // skip the escaped character
			}
		case c == '\'' || c == '"':
			quote = c
		case c == '#' && (i == 0 || raw[i-1] == ' '):
			return raw[:i], nil
		}
	}
	if quote != 0 {
		return "", fmt.Errorf("yaml: line %d: unterminated %c-quoted string", num, quote)
	}
	return raw, nil
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses the run of lines at exactly the given indent as one
// node — a sequence if the first line is a dash item, else a mapping.
func (p *yamlParser) parseBlock(indent int) (yamlValue, error) {
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("yaml: line %d: unexpected indentation %d (expected %d)", l.num, l.indent, indent)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func (p *yamlParser) parseSequence(indent int) (yamlValue, error) {
	var seq []yamlValue
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("yaml: line %d: unexpected indentation inside sequence", l.num)
			}
			break
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("yaml: line %d: expected a %q sequence item, got %q", l.num, "- ", l.text)
		}
		rest := strings.TrimPrefix(l.text, "-")
		inner := strings.TrimLeft(rest, " ")
		if inner == "" {
			// `-` alone: the item is the following more-indented block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				return nil, fmt.Errorf("yaml: line %d: empty sequence item", l.num)
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, item)
			continue
		}
		itemIndent := indent + (len(l.text) - len(inner))
		if _, _, err := splitYAMLKey(yamlLine{num: l.num, text: inner}); err == nil {
			// `- key: value`: rewrite the line as the content at its own
			// column and parse a mapping there; it absorbs following
			// deeper lines as further entries.
			p.lines[p.pos] = yamlLine{num: l.num, indent: itemIndent, text: inner}
			item, err := p.parseBlock(itemIndent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, item)
			continue
		}
		// `- scalar`: a leaf item; nothing deeper may follow it.
		v, err := parseYAMLScalar(inner, l.num)
		if err != nil {
			return nil, err
		}
		p.pos++
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			return nil, fmt.Errorf("yaml: line %d: unexpected indentation after scalar item", p.lines[p.pos].num)
		}
		seq = append(seq, v)
	}
	return seq, nil
}

func (p *yamlParser) parseMapping(indent int) (yamlValue, error) {
	m := make(map[string]yamlValue)
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, fmt.Errorf("yaml: line %d: unexpected indentation inside mapping", l.num)
			}
			break
		}
		if l.text == "-" || strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("yaml: line %d: sequence item inside mapping", l.num)
		}
		key, rest, err := splitYAMLKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("yaml: line %d: duplicate key %q", l.num, key)
		}
		if rest != "" {
			v, err := parseYAMLScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			p.pos++
			continue
		}
		// `key:` alone: the value is the following more-indented block,
		// or an empty scalar if none follows.
		p.pos++
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		m[key] = scalar{text: "", line: l.num}
	}
	return m, nil
}

// splitYAMLKey splits `key: value` at the first unquoted colon that ends
// the key (followed by a space or the end of line).
func splitYAMLKey(l yamlLine) (key, rest string, err error) {
	for i := 0; i < len(l.text); i++ {
		if l.text[i] != ':' {
			continue
		}
		if i+1 < len(l.text) && l.text[i+1] != ' ' {
			continue
		}
		key = strings.TrimSpace(l.text[:i])
		if key == "" {
			return "", "", fmt.Errorf("yaml: line %d: empty mapping key", l.num)
		}
		if strings.HasPrefix(key, "'") || strings.HasPrefix(key, `"`) {
			return "", "", fmt.Errorf("yaml: line %d: quoted keys are not supported", l.num)
		}
		return key, strings.TrimSpace(l.text[i+1:]), nil
	}
	return "", "", fmt.Errorf("yaml: line %d: expected %q in mapping entry %q", l.num, "key: value", l.text)
}

func parseYAMLScalar(s string, num int) (yamlValue, error) {
	switch {
	case strings.HasPrefix(s, "{") || strings.HasPrefix(s, "["):
		return nil, fmt.Errorf("yaml: line %d: flow collections are not supported", num)
	case strings.HasPrefix(s, "&") || strings.HasPrefix(s, "*"):
		return nil, fmt.Errorf("yaml: line %d: anchors and aliases are not supported", num)
	case strings.HasPrefix(s, "|") || strings.HasPrefix(s, ">"):
		return nil, fmt.Errorf("yaml: line %d: block scalars are not supported", num)
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("yaml: line %d: unterminated single-quoted string", num)
		}
		return scalar{text: strings.ReplaceAll(s[1:len(s)-1], "''", "'"), line: num}, nil
	case strings.HasPrefix(s, `"`):
		if len(s) < 2 || !strings.HasSuffix(s, `"`) {
			return nil, fmt.Errorf("yaml: line %d: unterminated double-quoted string", num)
		}
		var b strings.Builder
		body := s[1 : len(s)-1]
		for i := 0; i < len(body); i++ {
			if body[i] != '\\' {
				b.WriteByte(body[i])
				continue
			}
			i++
			if i >= len(body) {
				return nil, fmt.Errorf("yaml: line %d: dangling escape in string", num)
			}
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(body[i])
			default:
				return nil, fmt.Errorf("yaml: line %d: unsupported escape \\%c", num, body[i])
			}
		}
		return scalar{text: b.String(), line: num}, nil
	default:
		return scalar{text: s, line: num}, nil
	}
}
