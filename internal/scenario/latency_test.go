package scenario

import (
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/queueing"
)

// latency_test.go covers the top-level latency: block of the scenario
// language — decoding, defaults, the validation surface, and the probe
// metrics reaching the assertion engine end to end.

const latencyScenario = `
name: tail-probe
workload: EP
duration: 60s
utilization: 0.7
fleet:
  - type: A9
    count: 8
  - type: K10
    count: 2
latency:
  kernel: mg1
  scv: 4
  percentile: 99
events:
  - at: 20s
    action: fail
    target:
      type: A9
      count: 4
assertions:
  - metric: tail_latency_seconds
    op: ">"
    value: 0
  - metric: avg_tail_latency_seconds
    op: ">"
    value: 0
  - metric: latency_saturated_samples
    op: "=="
    value: 0
`

func TestLatencyBlockDecodes(t *testing.T) {
	sc, err := Parse([]byte(latencyScenario))
	if err != nil {
		t.Fatal(err)
	}
	want := &fleet.LatencySpec{
		Kernel:     queueing.Spec{Kind: queueing.KindMG1, SCV: 4},
		Percentile: 99,
	}
	if sc.Latency == nil || *sc.Latency != *want {
		t.Fatalf("latency block decoded to %+v, want %+v", sc.Latency, want)
	}
}

func TestLatencyBlockRunsWithAssertions(t *testing.T) {
	catalog, registry := testEnv(t)
	sc, err := Parse([]byte(latencyScenario))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Latency == nil {
		t.Fatal("Build dropped the latency spec")
	}
	sim, err := fleet.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.LatencyKernel != "mg1(scv=4)" || s.LatencyPercentile != 99 {
		t.Fatalf("probe labels = %q p%g", s.LatencyKernel, s.LatencyPercentile)
	}
	// The fail event degrades the fleet mid-run, so the worst sample
	// must sit above the average.
	if !(s.TailLatencySeconds > s.AvgTailLatencySeconds) {
		t.Fatalf("max %g not above avg %g", s.TailLatencySeconds, s.AvgTailLatencySeconds)
	}
	if fails := sc.CheckAll(s); len(fails) != 0 {
		t.Errorf("latency assertions failed: %v", fails)
	}
}

func TestLatencyBlockDefaults(t *testing.T) {
	src := strings.Replace(latencyScenario,
		"latency:\n  kernel: mg1\n  scv: 4\n  percentile: 99\n", "latency:\n  kernel: md1\n", 1)
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Latency == nil || *sc.Latency != (fleet.LatencySpec{}) {
		t.Fatalf("kernel-only latency block decoded to %+v, want the md1/p95 default", sc.Latency)
	}

	// Absent block: no probe at all.
	src = strings.Replace(latencyScenario,
		"latency:\n  kernel: mg1\n  scv: 4\n  percentile: 99\n", "", 1)
	sc, err = Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Latency != nil {
		t.Fatalf("absent latency block decoded to %+v, want nil", sc.Latency)
	}
}

func TestLatencyBlockErrors(t *testing.T) {
	for _, tc := range []struct {
		name, block, want string
	}{
		{"unknown kernel", "latency:\n  kernel: zzz\n", "unknown kernel"},
		{"unknown field", "latency:\n  servrs: 3\n", "unknown field"},
		{"scv on md1", "latency:\n  scv: 1\n", "scv applies"},
		{"bad percentile", "latency:\n  percentile: 100\n", "outside [0, 100)"},
		{"servers on mg1", "latency:\n  kernel: mg1\n  servers: 2\n", "servers applies"},
	} {
		src := strings.Replace(latencyScenario,
			"latency:\n  kernel: mg1\n  scv: 4\n  percentile: 99\n", tc.block, 1)
		if _, err := Parse([]byte(src)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err %v, want containing %q", tc.name, err, tc.want)
		}
	}
}
