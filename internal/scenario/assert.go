package scenario

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fleet"
)

// Assertion is one end-of-run check against a summary metric. Metric
// names are the fleet.Summary JSON field names (see fleet.MetricNames).
type Assertion struct {
	Metric string
	Op     string
	Value  float64
	// Tolerance widens == and != to |actual-value| <= Tolerance and
	// |actual-value| > Tolerance; ignored by the ordering operators.
	Tolerance float64
}

// assertOps lists the supported comparison operators.
var assertOps = map[string]bool{
	">=": true, "<=": true, ">": true, "<": true, "==": true, "!=": true,
}

// Validate checks the assertion shape without a summary.
func (a Assertion) Validate() error {
	if a.Metric == "" {
		return fmt.Errorf("scenario: assertion needs a metric")
	}
	known := false
	for _, name := range fleet.MetricNames() {
		if name == a.Metric {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("scenario: unknown metric %q (known: %s)",
			a.Metric, strings.Join(fleet.MetricNames(), ", "))
	}
	if !assertOps[a.Op] {
		return fmt.Errorf("scenario: assertion on %s has unknown operator %q (use >=, <=, >, <, ==, !=)",
			a.Metric, a.Op)
	}
	if a.Tolerance < 0 || math.IsNaN(a.Value) {
		return fmt.Errorf("scenario: assertion on %s has invalid value/tolerance", a.Metric)
	}
	return nil
}

// Check evaluates the assertion against a run summary.
func (a Assertion) Check(s fleet.Summary) error {
	actual, ok := s.Metric(a.Metric)
	if !ok {
		return fmt.Errorf("scenario: unknown metric %q", a.Metric)
	}
	pass := false
	switch a.Op {
	case ">=":
		pass = actual >= a.Value
	case "<=":
		pass = actual <= a.Value
	case ">":
		pass = actual > a.Value
	case "<":
		pass = actual < a.Value
	case "==":
		pass = math.Abs(actual-a.Value) <= a.Tolerance
	case "!=":
		pass = math.Abs(actual-a.Value) > a.Tolerance
	default:
		return fmt.Errorf("scenario: unknown operator %q", a.Op)
	}
	if !pass {
		return fmt.Errorf("assertion failed: %s = %g, want %s %g", a.Metric, actual, a.Op, a.Value)
	}
	return nil
}

// String renders the assertion the way scenario files spell it.
func (a Assertion) String() string {
	return fmt.Sprintf("%s %s %g", a.Metric, a.Op, a.Value)
}

// CheckAll runs every assertion and returns the failures.
func (s *Scenario) CheckAll(sum fleet.Summary) []error {
	var fails []error
	for _, a := range s.Asserts {
		if err := a.Check(sum); err != nil {
			fails = append(fails, err)
		}
	}
	return fails
}

func (d *decoder) assertions(v yamlValue) []Assertion {
	seq := d.sequence(v, "assertions")
	out := make([]Assertion, 0, len(seq))
	for i, item := range seq {
		path := fmt.Sprintf("assertions[%d]", i)
		m := d.mapping(item, path)
		d.knownKeys(m, path, "metric", "op", "value", "tolerance")
		var a Assertion
		for key, fv := range m {
			if d.err != nil {
				return nil
			}
			p := path + "." + key
			switch key {
			case "metric":
				a.Metric = d.str(fv, p)
			case "op":
				a.Op = d.str(fv, p)
			case "value":
				a.Value = d.float(fv, p)
			case "tolerance":
				a.Tolerance = d.float(fv, p)
			}
		}
		if d.err != nil {
			return nil
		}
		if err := a.Validate(); err != nil {
			d.fail(path, "%v", err)
			return nil
		}
		out = append(out, a)
	}
	return out
}
