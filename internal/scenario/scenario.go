package scenario

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/fleet"
	"repro/internal/hardware"
	"repro/internal/queueing"
	"repro/internal/units"
	"repro/internal/workload"
)

// Scenario is the decoded form of one scenario file. Durations are kept
// in seconds; node-type and workload names are resolved by Build.
type Scenario struct {
	Name        string
	Description string
	Workload    string
	Seed        uint64
	Duration    units.Seconds
	Slice       units.Seconds
	Utilization float64
	// Nodes is the total fleet size for weight-based templates; zero
	// when every template carries an explicit count.
	Nodes   int
	Fleet   []Template
	Chaos   fleet.Chaos
	Events  []fleet.TimedEvent
	Latency *fleet.LatencySpec
	Asserts []Assertion
}

// Template is one fleet template: a homogeneous slab of nodes. Exactly
// one of Count and Weight is set; weights share the scenario's total
// node count by largest remainder.
type Template struct {
	Type   string
	Count  int
	Weight float64
	// Cores and FreqHz override the type's full operating point when
	// positive (defaults: all cores at f_max).
	Cores  int
	FreqHz float64
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sc, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return sc, nil
}

// Parse decodes scenario source text.
func Parse(data []byte) (*Scenario, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	sc := d.scenario(root)
	if d.err != nil {
		return nil, d.err
	}
	return sc, nil
}

// decoder walks the untyped parse tree, recording the first error with
// its field path. All accessors are nil-safe after an error so decode
// code reads straight-line.
type decoder struct {
	err error
}

func (d *decoder) fail(path, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%s: %s", path, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) mapping(v yamlValue, path string) map[string]yamlValue {
	if d.err != nil {
		return nil
	}
	m, ok := v.(map[string]yamlValue)
	if !ok {
		d.fail(path, "expected a mapping, got %s", describeYAML(v))
		return nil
	}
	return m
}

func (d *decoder) sequence(v yamlValue, path string) []yamlValue {
	if d.err != nil {
		return nil
	}
	s, ok := v.([]yamlValue)
	if !ok {
		d.fail(path, "expected a list, got %s", describeYAML(v))
		return nil
	}
	return s
}

func (d *decoder) scalarAt(v yamlValue, path string) (scalar, bool) {
	if d.err != nil {
		return scalar{}, false
	}
	s, ok := v.(scalar)
	if !ok {
		d.fail(path, "expected a scalar, got %s", describeYAML(v))
		return scalar{}, false
	}
	return s, true
}

func describeYAML(v yamlValue) string {
	switch v.(type) {
	case map[string]yamlValue:
		return "a mapping"
	case []yamlValue:
		return "a list"
	case scalar:
		return "a scalar"
	default:
		return "nothing"
	}
}

func (d *decoder) str(v yamlValue, path string) string {
	s, ok := d.scalarAt(v, path)
	if !ok {
		return ""
	}
	return s.text
}

func (d *decoder) float(v yamlValue, path string) float64 {
	s, ok := d.scalarAt(v, path)
	if !ok {
		return 0
	}
	f, err := strconv.ParseFloat(s.text, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
		d.fail(path, "line %d: %q is not a number", s.line, s.text)
		return 0
	}
	return f
}

func (d *decoder) integer(v yamlValue, path string) int {
	s, ok := d.scalarAt(v, path)
	if !ok {
		return 0
	}
	n, err := strconv.Atoi(s.text)
	if err != nil {
		d.fail(path, "line %d: %q is not an integer", s.line, s.text)
		return 0
	}
	return n
}

func (d *decoder) boolean(v yamlValue, path string) bool {
	s, ok := d.scalarAt(v, path)
	if !ok {
		return false
	}
	switch s.text {
	case "true":
		return true
	case "false":
		return false
	}
	d.fail(path, "line %d: %q is not true or false", s.line, s.text)
	return false
}

// duration accepts Go duration strings ("90s", "10m", "1h30m") and bare
// numbers meaning seconds.
func (d *decoder) duration(v yamlValue, path string) units.Seconds {
	s, ok := d.scalarAt(v, path)
	if !ok {
		return 0
	}
	if f, err := strconv.ParseFloat(s.text, 64); err == nil {
		return units.Seconds(f)
	}
	dur, err := time.ParseDuration(s.text)
	if err != nil {
		d.fail(path, "line %d: %q is not a duration (use 90s, 10m, 1h30m or a number of seconds)", s.line, s.text)
		return 0
	}
	return units.Seconds(dur.Seconds())
}

// frequency accepts "1.4GHz", "800MHz" or a bare number of hertz.
func (d *decoder) frequency(v yamlValue, path string) float64 {
	s, ok := d.scalarAt(v, path)
	if !ok {
		return 0
	}
	text, mult := s.text, 1.0
	switch {
	case strings.HasSuffix(text, "GHz"):
		text, mult = strings.TrimSuffix(text, "GHz"), 1e9
	case strings.HasSuffix(text, "MHz"):
		text, mult = strings.TrimSuffix(text, "MHz"), 1e6
	case strings.HasSuffix(text, "Hz"):
		text = strings.TrimSuffix(text, "Hz")
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil || f <= 0 {
		d.fail(path, "line %d: %q is not a frequency (use 1.4GHz, 800MHz or hertz)", s.line, s.text)
		return 0
	}
	return f * mult
}

// knownKeys rejects misspelled fields instead of ignoring them.
func (d *decoder) knownKeys(m map[string]yamlValue, path string, known ...string) {
	if d.err != nil {
		return
	}
	var bad []string
	for k := range m {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			bad = append(bad, k)
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		d.fail(path, "unknown field %q (known fields: %s)", bad[0], strings.Join(known, ", "))
	}
}

func (d *decoder) scenario(root yamlValue) *Scenario {
	m := d.mapping(root, "scenario")
	d.knownKeys(m, "scenario",
		"name", "description", "workload", "seed", "duration", "slice",
		"utilization", "nodes", "fleet", "chaos", "events", "latency",
		"assertions")
	sc := &Scenario{Seed: 1, Utilization: 1, Slice: 1}
	for key, v := range m {
		if d.err != nil {
			return nil
		}
		switch key {
		case "name":
			sc.Name = d.str(v, "name")
		case "description":
			sc.Description = d.str(v, "description")
		case "workload":
			sc.Workload = d.str(v, "workload")
		case "seed":
			n := d.integer(v, "seed")
			if n < 0 {
				d.fail("seed", "must be non-negative, got %d", n)
			}
			sc.Seed = uint64(n)
		case "duration":
			sc.Duration = d.duration(v, "duration")
		case "slice":
			sc.Slice = d.duration(v, "slice")
		case "utilization":
			sc.Utilization = d.float(v, "utilization")
		case "nodes":
			sc.Nodes = d.integer(v, "nodes")
		case "fleet":
			sc.Fleet = d.fleetTemplates(v)
		case "chaos":
			sc.Chaos = d.chaos(v)
		case "events":
			sc.Events = d.events(v)
		case "latency":
			sc.Latency = d.latency(v)
		case "assertions":
			sc.Asserts = d.assertions(v)
		}
	}
	if d.err != nil {
		return nil
	}
	if sc.Workload == "" {
		d.fail("workload", "is required")
	}
	if sc.Duration <= 0 {
		d.fail("duration", "is required and must be positive")
	}
	if len(sc.Fleet) == 0 {
		d.fail("fleet", "needs at least one template")
	}
	if d.err != nil {
		return nil
	}
	return sc
}

func (d *decoder) fleetTemplates(v yamlValue) []Template {
	seq := d.sequence(v, "fleet")
	out := make([]Template, 0, len(seq))
	for i, item := range seq {
		path := fmt.Sprintf("fleet[%d]", i)
		m := d.mapping(item, path)
		d.knownKeys(m, path, "type", "count", "weight", "cores", "freq")
		var t Template
		for key, fv := range m {
			if d.err != nil {
				return nil
			}
			p := path + "." + key
			switch key {
			case "type":
				t.Type = d.str(fv, p)
			case "count":
				t.Count = d.integer(fv, p)
			case "weight":
				t.Weight = d.float(fv, p)
			case "cores":
				t.Cores = d.integer(fv, p)
			case "freq":
				t.FreqHz = d.frequency(fv, p)
			}
		}
		if d.err != nil {
			return nil
		}
		if t.Type == "" {
			d.fail(path+".type", "is required")
			return nil
		}
		if (t.Count > 0) == (t.Weight > 0) {
			d.fail(path, "needs exactly one of count and weight")
			return nil
		}
		if t.Count < 0 || t.Weight < 0 {
			d.fail(path, "count and weight must be positive")
			return nil
		}
		out = append(out, t)
	}
	return out
}

func (d *decoder) chaos(v yamlValue) fleet.Chaos {
	m := d.mapping(v, "chaos")
	d.knownKeys(m, "chaos",
		"enabled", "mtbf", "mttr", "throttle_every", "throttle_for",
		"throttle_factor", "cap_every", "cap_for", "cap_fraction",
		"straggler_prob", "straggler_slowdown")
	var c fleet.Chaos
	c.Enabled = true // presence of the block enables the layer
	for key, fv := range m {
		if d.err != nil {
			return c
		}
		p := "chaos." + key
		switch key {
		case "enabled":
			c.Enabled = d.boolean(fv, p)
		case "mtbf":
			c.MTBF = d.duration(fv, p)
		case "mttr":
			c.MTTR = d.duration(fv, p)
		case "throttle_every":
			c.ThrottleEvery = d.duration(fv, p)
		case "throttle_for":
			c.ThrottleFor = d.duration(fv, p)
		case "throttle_factor":
			c.ThrottleFactor = d.float(fv, p)
		case "cap_every":
			c.CapEvery = d.duration(fv, p)
		case "cap_for":
			c.CapFor = d.duration(fv, p)
		case "cap_fraction":
			c.CapFraction = d.float(fv, p)
		case "straggler_prob":
			c.StragglerProb = d.float(fv, p)
		case "straggler_slowdown":
			c.StragglerSlowdown = d.float(fv, p)
		}
	}
	return c
}

func (d *decoder) events(v yamlValue) []fleet.TimedEvent {
	seq := d.sequence(v, "events")
	out := make([]fleet.TimedEvent, 0, len(seq))
	for i, item := range seq {
		path := fmt.Sprintf("events[%d]", i)
		m := d.mapping(item, path)
		d.knownKeys(m, path,
			"at", "action", "target", "factor", "slowdown", "watts",
			"fraction", "utilization", "for")
		ev := fleet.TimedEvent{Target: fleet.EveryNode()}
		for key, fv := range m {
			if d.err != nil {
				return nil
			}
			p := path + "." + key
			switch key {
			case "at":
				ev.At = d.duration(fv, p)
			case "action":
				ev.Action = fleet.Action(d.str(fv, p))
			case "target":
				ev.Target = d.target(fv, p)
			case "factor":
				ev.Factor = d.float(fv, p)
			case "slowdown":
				ev.Slowdown = d.float(fv, p)
			case "watts":
				ev.Watts = units.Watts(d.float(fv, p))
			case "fraction":
				ev.Fraction = d.float(fv, p)
			case "utilization":
				ev.Utilization = d.float(fv, p)
			case "for":
				ev.For = d.duration(fv, p)
			}
		}
		if d.err != nil {
			return nil
		}
		if ev.Action == "" {
			d.fail(path+".action", "is required")
			return nil
		}
		out = append(out, ev)
	}
	return out
}

// latency decodes the tail-latency probe block: kernel selects the
// queueing model (md1 default, mg1, mmk), scv the M/G/1 service-time
// variability, servers the M/M/k pool size (omit for the alive node
// count), percentile the probed response-time percentile (default 95).
func (d *decoder) latency(v yamlValue) *fleet.LatencySpec {
	m := d.mapping(v, "latency")
	d.knownKeys(m, "latency", "kernel", "scv", "servers", "percentile")
	ls := &fleet.LatencySpec{}
	for key, fv := range m {
		if d.err != nil {
			return nil
		}
		p := "latency." + key
		switch key {
		case "kernel":
			kind, err := queueing.ParseKind(d.str(fv, p))
			if err != nil {
				d.fail(p, "%v", err)
				return nil
			}
			ls.Kernel.Kind = kind
		case "scv":
			ls.Kernel.SCV = d.float(fv, p)
		case "servers":
			ls.Kernel.Servers = d.integer(fv, p)
		case "percentile":
			ls.Percentile = d.float(fv, p)
		}
	}
	if d.err != nil {
		return nil
	}
	if err := ls.Validate(); err != nil {
		d.fail("latency", "%v", err)
		return nil
	}
	return ls
}

// target decodes either the shorthand string "all" or a mapping with
// type/node/count/fraction.
func (d *decoder) target(v yamlValue, path string) fleet.Target {
	if s, ok := v.(scalar); ok {
		if s.text == "all" {
			return fleet.EveryNode()
		}
		d.fail(path, "line %d: %q is not a target (use \"all\" or a mapping)", s.line, s.text)
		return fleet.EveryNode()
	}
	m := d.mapping(v, path)
	d.knownKeys(m, path, "type", "node", "count", "fraction")
	t := fleet.EveryNode()
	for key, fv := range m {
		if d.err != nil {
			return t
		}
		p := path + "." + key
		switch key {
		case "type":
			t.Type = d.str(fv, p)
		case "node":
			t.Node = d.integer(fv, p)
		case "count":
			t.Count = d.integer(fv, p)
		case "fraction":
			t.Fraction = d.float(fv, p)
		}
	}
	return t
}

// Build resolves names against the catalog and workload registry and
// returns a runnable fleet spec.
func (s *Scenario) Build(catalog *hardware.Catalog, registry *workload.Registry) (fleet.Spec, error) {
	wl, err := registry.Lookup(s.Workload)
	if err != nil {
		return fleet.Spec{}, fmt.Errorf("scenario: workload: %w", err)
	}
	templates, err := s.buildTemplates(catalog)
	if err != nil {
		return fleet.Spec{}, err
	}
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	spec := fleet.Spec{
		Name:        name,
		Workload:    wl,
		Templates:   templates,
		Duration:    s.Duration,
		Slice:       s.Slice,
		Utilization: s.Utilization,
		Seed:        s.Seed,
		Chaos:       s.Chaos,
		Events:      s.Events,
		Latency:     s.Latency,
	}
	if err := spec.Validate(); err != nil {
		return fleet.Spec{}, err
	}
	return spec, nil
}

func (s *Scenario) buildTemplates(catalog *hardware.Catalog) ([]cluster.Group, error) {
	counts := make([]int, len(s.Fleet))
	var totalWeight float64
	weighted := false
	for i, t := range s.Fleet {
		if t.Weight > 0 {
			weighted = true
			totalWeight += t.Weight
		} else {
			counts[i] = t.Count
		}
	}
	if weighted {
		if s.Nodes <= 0 {
			return nil, fmt.Errorf("scenario: weighted fleet templates need a positive top-level nodes total")
		}
		if err := apportion(counts, s.Fleet, totalWeight, s.Nodes); err != nil {
			return nil, err
		}
	} else if s.Nodes > 0 {
		sum := 0
		for _, c := range counts {
			sum += c
		}
		if sum != s.Nodes {
			return nil, fmt.Errorf("scenario: template counts sum to %d but nodes says %d", sum, s.Nodes)
		}
	}

	groups := make([]cluster.Group, 0, len(s.Fleet))
	for i, t := range s.Fleet {
		nt, err := catalog.Lookup(t.Type)
		if err != nil {
			return nil, fmt.Errorf("scenario: fleet[%d]: %w", i, err)
		}
		g := cluster.FullNodes(nt, counts[i])
		if t.Cores > 0 {
			g.Cores = t.Cores
		}
		if t.FreqHz > 0 {
			g.Freq = units.Hertz(t.FreqHz)
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: fleet[%d]: %w", i, err)
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// apportion distributes the node total over weighted templates by
// largest remainder, so counts are integers, sum exactly to the total,
// and track the weights as closely as possible.
func apportion(counts []int, templates []Template, totalWeight float64, total int) error {
	type rem struct {
		idx  int
		frac float64
	}
	// Explicit counts come off the top; weights share the rest.
	pool := total
	for i, t := range templates {
		if t.Weight <= 0 {
			pool -= counts[i]
		}
	}
	if pool <= 0 {
		return fmt.Errorf("scenario: explicit counts leave no nodes for weighted templates (total %d)", total)
	}
	assigned := 0
	var rems []rem
	for i, t := range templates {
		if t.Weight <= 0 {
			continue
		}
		exact := float64(pool) * t.Weight / totalWeight
		floor := int(exact)
		counts[i] = floor
		assigned += floor
		rems = append(rems, rem{idx: i, frac: exact - float64(floor)})
	}
	// Hand out the leftover nodes to the largest fractional parts,
	// breaking ties by template order for determinism.
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for i := 0; i < pool-assigned; i++ {
		counts[rems[i%len(rems)].idx]++
	}
	for i, t := range templates {
		if t.Weight > 0 && counts[i] == 0 {
			return fmt.Errorf("scenario: fleet[%d] (%s) rounds to zero nodes; raise its weight or the nodes total", i, t.Type)
		}
	}
	return nil
}
