// Package characterize implements the measurement-driven pipeline of
// Figure 1: run micro-benchmarks under the power meter to fit a node
// type's power parameters, and run instrumented workloads to extract
// their service-demand vectors from the simulated perf counters. The
// paper performed both steps on physical nodes; here they run against
// the discrete-event simulator, which is the point — the downstream
// model only ever sees fitted parameters, exactly as in the paper.
package characterize

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/microbench"
	"repro/internal/model"
	"repro/internal/powermeter"
	"repro/internal/simulator"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options configures the characterization runs.
type Options struct {
	// Duration sizes each micro-benchmark run.
	Duration units.Seconds
	// Effects are the simulator second-order behaviours active during
	// the measurement (a real lab cannot switch them off either).
	Effects simulator.Effects
	// Meter is the power instrument.
	Meter powermeter.Meter
	// Seed makes the measurement campaign reproducible.
	Seed uint64
}

// DefaultOptions returns a 10-second campaign with the default
// instrument and effects.
func DefaultOptions() Options {
	return Options{
		Duration: 10,
		Effects:  simulator.DefaultEffects(),
		Meter:    powermeter.DefaultMeter(),
		Seed:     1,
	}
}

// PowerResult holds the fitted power parameters of one node type plus
// the raw measurements behind them.
type PowerResult struct {
	Node   string
	Params hardware.PowerParams
	// IdlePower, CPUBurnPower, MemStallPower, NetBlastPower are the raw
	// mean powers of the four measurement runs.
	IdlePower, CPUBurnPower, MemStallPower, NetBlastPower units.Watts
}

// PowerParams runs the characterization campaign for one node type:
//
//	P_idle          = mean power with no workload
//	P_CPU,act/core  = (P_cpuburn - P_idle) / cores
//	P_CPU,stall/core= (P_memstall - P_idle - P_mem) / cores
//	P_net           = P_netblast - P_idle
//
// P_mem comes from the memory datasheet exactly as in the paper ("power
// used by active memory is derived from specifications").
func PowerParams(node *hardware.NodeType, opt Options) (PowerResult, error) {
	if err := node.Validate(); err != nil {
		return PowerResult{}, err
	}
	if opt.Duration <= 0 {
		return PowerResult{}, errors.New("characterize: non-positive duration")
	}
	res := PowerResult{Node: node.Name}

	idle, err := simulator.RunIdle(node, opt.Duration, opt.Effects, opt.Meter, opt.Seed)
	if err != nil {
		return PowerResult{}, fmt.Errorf("characterize idle: %w", err)
	}
	res.IdlePower = idle.MeanPower

	run := func(p *workload.Profile) (units.Watts, error) {
		cfg := cluster.MustConfig(cluster.FullNodes(node, 1))
		sres, err := simulator.Run(cfg, p, opt.Effects, opt.Meter, opt.Seed)
		if err != nil {
			return 0, err
		}
		return sres.Measured.MeanPower, nil
	}

	burn, err := microbench.CPUBurn(node, opt.Duration)
	if err != nil {
		return PowerResult{}, err
	}
	if res.CPUBurnPower, err = run(burn); err != nil {
		return PowerResult{}, fmt.Errorf("characterize cpuburn: %w", err)
	}
	stall, err := microbench.MemStall(node, opt.Duration)
	if err != nil {
		return PowerResult{}, err
	}
	if res.MemStallPower, err = run(stall); err != nil {
		return PowerResult{}, fmt.Errorf("characterize memstall: %w", err)
	}
	blast, err := microbench.NetBlast(node, opt.Duration)
	if err != nil {
		return PowerResult{}, err
	}
	if res.NetBlastPower, err = run(blast); err != nil {
		return PowerResult{}, fmt.Errorf("characterize netblast: %w", err)
	}

	cores := float64(node.Cores)
	memSpec := node.Power.Mem // datasheet value
	params := hardware.PowerParams{
		Idle:            res.IdlePower,
		Mem:             memSpec,
		CPUActPerCore:   units.Watts((float64(res.CPUBurnPower) - float64(res.IdlePower)) / cores),
		CPUStallPerCore: units.Watts((float64(res.MemStallPower) - float64(res.IdlePower) - float64(memSpec)) / cores),
		Net:             units.Watts(float64(res.NetBlastPower) - float64(res.IdlePower)),
	}
	if params.CPUActPerCore < 0 || params.CPUStallPerCore < 0 || params.Net < 0 {
		return PowerResult{}, fmt.Errorf("characterize: negative fitted parameter for %s: %+v", node.Name, params)
	}
	res.Params = params
	return res, nil
}

// DemandResult holds an extracted service-demand vector and the run it
// came from.
type DemandResult struct {
	Node     string
	Workload string
	Demand   workload.Demand
	Units    float64
}

// Demands runs one instrumented workload job on a single node and
// derives its per-unit demand vector from the perf counters, plus the
// CPU intensity from the power balance — the paper's workload
// characterization step.
func Demands(node *hardware.NodeType, wl *workload.Profile, fitted hardware.PowerParams, opt Options) (DemandResult, error) {
	cfg := cluster.MustConfig(cluster.FullNodes(node, 1))
	sres, err := simulator.Run(cfg, wl, opt.Effects, opt.Meter, opt.Seed)
	if err != nil {
		return DemandResult{}, err
	}
	cnt := sres.Counters(node.Name)
	u := wl.JobUnits
	if u <= 0 {
		return DemandResult{}, errors.New("characterize: workload has no units")
	}
	cores := float64(node.Cores)
	f := float64(node.FMax())
	d := workload.Demand{
		CoreCycles: units.Cycles(cnt.WorkCycles / u),
		MemCycles:  units.Cycles(cnt.MemCycles / u),
		IOBytes:    units.Bytes(cnt.IOBytes / u),
		IOReqs:     cnt.IORequests / u,
	}
	// Intensity from the power balance of the measured run: attribute
	// the residual above idle + stall + mem + net to active core power.
	t := float64(sres.Time)
	if t <= 0 {
		return DemandResult{}, errors.New("characterize: zero runtime")
	}
	tCore := cnt.WorkCycles / (cores * f)
	tMem := cnt.MemCycles / f
	tStall := tMem - tCore
	if tStall < 0 {
		tStall = 0
	}
	tIO := cnt.IOBytes / float64(node.NICBandwidth)
	residual := float64(sres.Measured.MeanPower) -
		float64(fitted.Idle) -
		float64(fitted.CPUStallPerCore)*cores*(tStall/t) -
		float64(fitted.Mem)*(tMem/t) -
		float64(fitted.Net)*(tIO/t)
	coreShare := float64(fitted.CPUActPerCore) * cores * (tCore / t)
	if coreShare > 0 && residual > 0 {
		d.Intensity = residual / coreShare
	} else {
		d.Intensity = 1
	}
	if err := d.Validate(); err != nil {
		return DemandResult{}, fmt.Errorf("characterize: %w", err)
	}
	return DemandResult{Node: node.Name, Workload: wl.Name, Demand: d, Units: u}, nil
}

// RoundTrip characterizes a workload on a node and evaluates the model
// with the *fitted* parameters and demands, returning the fitted-model
// result — the full Figure 1 pipeline end to end. Comparing it to the
// simulator run of the same workload gives the validation error a user
// of the methodology would see.
func RoundTrip(node *hardware.NodeType, wl *workload.Profile, opt Options) (model.Result, error) {
	pw, err := PowerParams(node, opt)
	if err != nil {
		return model.Result{}, err
	}
	dm, err := Demands(node, wl, pw.Params, opt)
	if err != nil {
		return model.Result{}, err
	}
	// Build a fitted node type and profile.
	fittedNode := *node
	fittedNode.Name = node.Name
	fittedNode.Power = pw.Params
	fitted := workload.NewProfile(wl.Name, wl.Domain, wl.Unit, wl.JobUnits)
	fitted.IORate = wl.IORate
	if err := fitted.SetDemand(node.Name, dm.Demand); err != nil {
		return model.Result{}, err
	}
	cfg := cluster.MustConfig(cluster.FullNodes(&fittedNode, 1))
	return model.Evaluate(cfg, fitted, model.Options{})
}
