package characterize

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/workload"
)

// TestPowerParamsRecoverNominal: the fitted power parameters must land
// within the device-binning band of the catalog values.
func TestPowerParamsRecoverNominal(t *testing.T) {
	cat := hardware.DefaultCatalog()
	for _, name := range []string{"A9", "K10"} {
		node, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PowerParams(node, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checks := []struct {
			label     string
			got, want float64
			tol       float64
		}{
			{"idle", float64(res.Params.Idle), float64(node.Power.Idle), 0.10},
			{"act/core", float64(res.Params.CPUActPerCore), float64(node.Power.CPUActPerCore), 0.15},
			{"stall/core", float64(res.Params.CPUStallPerCore), float64(node.Power.CPUStallPerCore), 0.35},
			{"net", float64(res.Params.Net), float64(node.Power.Net), 0.35},
		}
		for _, c := range checks {
			if stats.RelErr(c.got, c.want) > c.tol {
				t.Errorf("%s %s: fitted %.3g, nominal %.3g", name, c.label, c.got, c.want)
			}
		}
	}
}

// TestDemandsRecoverProfile: extracted demand vectors must approximate
// the calibrated profile that drove the simulation.
func TestDemandsRecoverProfile(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	node, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	pw, err := PowerParams(node, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{workload.NameEP, workload.NameX264, workload.NameBlackscholes} {
		wl, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		dm, err := Demands(node, wl, pw.Params, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want, err := wl.Demand(node.Name)
		if err != nil {
			t.Fatal(err)
		}
		// The simulator's noise and contention inflate the counters; the
		// extraction should still land within ~15%.
		if stats.RelErr(float64(dm.Demand.CoreCycles), float64(want.CoreCycles)) > 0.15 {
			t.Errorf("%s core cycles: fitted %.4g, true %.4g", name, float64(dm.Demand.CoreCycles), float64(want.CoreCycles))
		}
		if want.MemCycles > 0 && stats.RelErr(float64(dm.Demand.MemCycles), float64(want.MemCycles)) > 0.25 {
			t.Errorf("%s mem cycles: fitted %.4g, true %.4g", name, float64(dm.Demand.MemCycles), float64(want.MemCycles))
		}
		if dm.Demand.Intensity <= 0 || dm.Demand.Intensity > 1.5 {
			t.Errorf("%s intensity out of range: %g", name, dm.Demand.Intensity)
		}
	}
}

// TestRoundTripValidation: the full fitted pipeline must predict the
// simulator within the paper's validation band.
func TestRoundTripValidation(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	node, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	for _, name := range []string{workload.NameEP, workload.NameRSA} {
		wl, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		fitted, err := RoundTrip(node, wl, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sim, err := simulator.Run(cluster.MustConfig(cluster.FullNodes(node, 1)), wl,
			opt.Effects, opt.Meter, opt.Seed+99)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(float64(fitted.Time), float64(sim.Time)) > 0.20 {
			t.Errorf("%s: fitted-model time %v vs simulated %v", name, fitted.Time, sim.Time)
		}
		if stats.RelErr(float64(fitted.Energy), float64(sim.Measured.Energy)) > 0.20 {
			t.Errorf("%s: fitted-model energy %v vs measured %v", name, fitted.Energy, sim.Measured.Energy)
		}
	}
}
