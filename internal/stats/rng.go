// Package stats provides the small numerical toolkit the reproduction
// needs: a deterministic PRNG, percentiles, numerical integration,
// compensated summation, root finding and streaming summaries.
//
// Everything is deterministic: simulations and benchmarks seed their own
// generators so results are reproducible run to run.
package stats

import "math"

// RNG is a deterministic xoshiro256** pseudo-random generator.
//
// The reproduction cannot use math/rand's global source because benchmark
// and test results must be bit-reproducible across runs and package
// initialization orders. xoshiro256** has a 256-bit state, passes BigCrush,
// and is trivial to implement from the public domain reference.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for NormFloat64 (Marsaglia polar method)
	hasSpare bool
	spare    float64
}

// NewRNG returns a generator seeded from seed via splitmix64, which
// guarantees a well-mixed state even for small consecutive seeds.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A theoretically possible all-zero state would lock the generator.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniformly distributed double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Modulo bias is negligible for the n (< 2^32) used here, but Lemire's
	// multiply-shift rejection is just as cheap and exact.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		threshold := (-uint64(n)) % uint64(n)
		for lo < threshold {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo32 := t & mask
	carry := t >> 32
	t = aHi*bLo + carry
	mid1 := t & mask
	hi1 := t >> 32
	t = aLo*bHi + mid1
	mid2 := t & mask
	hi2 := t >> 32
	hi = aHi*bHi + hi1 + hi2
	lo = mid2<<32 | lo32
	return hi, lo
}

// ExpFloat64 returns an exponentially distributed value with the given
// rate (mean 1/rate). Used for Poisson job inter-arrival times.
func (r *RNG) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic("stats: ExpFloat64 with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// NormFloat64 returns a normally distributed value with mean 0 and the
// given standard deviation, via the Marsaglia polar method.
func (r *RNG) NormFloat64(stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare * stddev
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		m := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * m
		r.hasSpare = true
		return u * m * stddev
	}
}

// Split returns a new generator deterministically derived from r, so that
// independent simulation components can draw from decorrelated streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
