package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming moments of a sequence using Welford's
// algorithm, which is numerically stable for long simulation traces.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add accumulates v into the summary.
func (s *Summary) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	delta := v - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (v - s.mean)
}

// N returns the number of accumulated values.
func (s *Summary) N() int { return s.n }

// Mean returns the running mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for fewer than 2 values).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest accumulated value (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest accumulated value (0 if empty).
func (s *Summary) Max() float64 { return s.max }

func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.min, s.max)
}

// Reservoir keeps a bounded uniform sample of a stream so that percentiles
// of very long simulations can be estimated in constant memory
// (Vitter's algorithm R).
type Reservoir struct {
	cap  int
	seen int
	data []float64
	rng  *RNG
}

// NewReservoir returns a reservoir holding at most capacity samples,
// drawing replacement positions from rng.
func NewReservoir(capacity int, rng *RNG) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{cap: capacity, data: make([]float64, 0, capacity), rng: rng}
}

// Add offers v to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.seen++
	if len(r.data) < r.cap {
		r.data = append(r.data, v)
		return
	}
	j := r.rng.Intn(r.seen)
	if j < r.cap {
		r.data[j] = v
	}
}

// Seen returns how many values have been offered.
func (r *Reservoir) Seen() int { return r.seen }

// Percentile estimates the p-th percentile from the retained sample.
func (r *Reservoir) Percentile(p float64) (float64, error) {
	sorted := make([]float64, len(r.data))
	copy(sorted, r.data)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// Histogram is a fixed-width bucket histogram over [lo, hi); values
// outside the range are counted in the under/overflow buckets.
type Histogram struct {
	lo, hi float64
	width  float64
	counts []int
	under  int
	over   int
	total  int
}

// NewHistogram creates a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), counts: make([]int, n)}
}

// Add counts v.
func (h *Histogram) Add(v float64) {
	h.total++
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.over++
	default:
		i := int((v - h.lo) / h.width)
		if i >= len(h.counts) { // guard the hi boundary under rounding
			i = len(h.counts) - 1
		}
		h.counts[i]++
	}
}

// Count returns the number of values in bucket i.
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Buckets returns the number of regular buckets.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Total returns the number of values added, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// OutOfRange returns the underflow and overflow counts.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// BucketBounds returns the [lo, hi) range of bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	lo = h.lo + float64(i)*h.width
	return lo, lo + h.width
}
