package stats

import (
	"errors"
	"math"
	"sort"
)

// KahanSum accumulates floating point values with compensated summation,
// keeping the error independent of the number of terms. The proportionality
// metrics integrate power curves over fine utilization grids, where naive
// summation would lose precision.
type KahanSum struct {
	sum, c float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	y := v - k.c
	t := k.sum + y
	k.c = (t - k.sum) - y
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum }

// Trapezoid integrates the sampled function (xs[i], ys[i]) with the
// trapezoidal rule. xs must be strictly increasing and len(xs) == len(ys)
// with at least two points.
func Trapezoid(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: Trapezoid slice lengths differ")
	}
	if len(xs) < 2 {
		return 0, errors.New("stats: Trapezoid needs at least two points")
	}
	var k KahanSum
	for i := 1; i < len(xs); i++ {
		dx := xs[i] - xs[i-1]
		if dx <= 0 {
			return 0, errors.New("stats: Trapezoid xs not strictly increasing")
		}
		k.Add(dx * (ys[i] + ys[i-1]) / 2)
	}
	return k.Sum(), nil
}

// IntegrateFunc integrates f over [a, b] with n trapezoid panels.
func IntegrateFunc(f func(float64) float64, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	var k KahanSum
	k.Add(f(a) / 2)
	for i := 1; i < n; i++ {
		k.Add(f(a + float64(i)*h))
	}
	k.Add(f(b) / 2)
	return k.Sum() * h
}

// Percentile returns the p-th percentile (p in [0,100]) of data using
// linear interpolation between closest ranks (the same "type 7" estimator
// as numpy's default). data is not modified.
func Percentile(data []float64, p float64) (float64, error) {
	if len(data) == 0 {
		return 0, errors.New("stats: Percentile of empty data")
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, errors.New("stats: Percentile p out of range")
	}
	sorted := make([]float64, len(data))
	copy(sorted, data)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// PercentileSorted is Percentile for data already in ascending order.
// It avoids the copy and sort for hot paths such as queueing simulations.
func PercentileSorted(sorted []float64, p float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, errors.New("stats: Percentile of empty data")
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, errors.New("stats: Percentile p out of range")
	}
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Bisect finds a root of f in [a, b] to within tol using bisection.
// f(a) and f(b) must bracket a root (opposite signs, or one of them zero).
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.IsNaN(fa) || math.IsNaN(fb) {
		return 0, errors.New("stats: Bisect endpoint is NaN")
	}
	if fa*fb > 0 {
		return 0, errors.New("stats: Bisect endpoints do not bracket a root")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for i := 0; i < 200; i++ {
		mid := (a + b) / 2
		fm := f(mid)
		if fm == 0 || (b-a)/2 < tol {
			return mid, nil
		}
		if fa*fm < 0 {
			b = mid
		} else {
			a, fa = mid, fm
		}
	}
	return (a + b) / 2, nil
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Linspace returns n evenly spaced samples over [a, b] inclusive.
// n must be at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b // avoid accumulation error on the final point
	return out
}

// RelErr returns the relative error |got-want|/|want|, or the absolute
// error when want is zero.
func RelErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// AlmostEqual reports whether a and b agree within relative tolerance tol
// (with an absolute floor of tol for values near zero).
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}
