package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	a = NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds matched %d/1000 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g outside [0,1)", v)
		}
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Errorf("bucket %d has %d, want ~%d", i, c, n/10)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) hit only %d distinct values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const rate = 2.5
	var sum KahanSum
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64(rate)
		if v < 0 {
			t.Fatalf("negative exponential %g", v)
		}
		sum.Add(v)
	}
	mean := sum.Sum() / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("exponential mean %g, want %g", mean, 1/rate)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const sd = 3.0
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64(sd))
	}
	if math.Abs(s.Mean()) > 0.05 {
		t.Errorf("normal mean %g, want ~0", s.Mean())
	}
	if math.Abs(s.StdDev()-sd) > 0.05 {
		t.Errorf("normal sd %g, want %g", s.StdDev(), sd)
	}
}

func TestSplitDecorrelated(t *testing.T) {
	parent := NewRNG(5)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("split streams matched %d/1000 draws", same)
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// Adding 1e8 copies of 0.1 naively loses precision; Kahan does not.
	var k KahanSum
	const n = 10000000
	for i := 0; i < n; i++ {
		k.Add(0.1)
	}
	if math.Abs(k.Sum()-n*0.1) > 1e-6 {
		t.Errorf("Kahan sum %g, want %g", k.Sum(), n*0.1)
	}
}

func TestTrapezoidExactForLinear(t *testing.T) {
	xs := Linspace(0, 2, 11)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 1 // integral over [0,2] = 6 + 2 = 8
	}
	got, err := Trapezoid(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-8) > 1e-12 {
		t.Errorf("Trapezoid = %g, want 8", got)
	}
}

func TestTrapezoidErrors(t *testing.T) {
	if _, err := Trapezoid([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Trapezoid([]float64{0}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Trapezoid([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("non-increasing xs accepted")
	}
}

func TestIntegrateFuncQuadratic(t *testing.T) {
	// int_0^1 x^2 dx = 1/3; trapezoid converges quadratically.
	got := IntegrateFunc(func(x float64) float64 { return x * x }, 0, 1, 1000)
	if math.Abs(got-1.0/3) > 1e-6 {
		t.Errorf("integral = %g, want 1/3", got)
	}
}

func TestPercentileKnownValues(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		got, err := Percentile(data, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("p%g = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	data := []float64{5, 1, 3}
	if _, err := Percentile(data, 50); err != nil {
		t.Fatal(err)
	}
	if data[0] != 5 || data[1] != 1 || data[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile > 100 accepted")
	}
}

// TestPercentileMonotoneProperty: for random data, percentile is
// monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		r := NewRNG(seed)
		data := make([]float64, n)
		for i := range data {
			data[i] = r.Float64() * 100
		}
		sorted := append([]float64(nil), data...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v, err := Percentile(data, p)
			if err != nil || v < prev || v < sorted[0]-1e-9 || v > sorted[n-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBisectFindsRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %g, want sqrt(2)", root)
	}
}

func TestBisectErrors(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x + 10 }, 0, 1, 1e-9); err == nil {
		t.Error("non-bracketing interval accepted")
	}
	if _, err := Bisect(func(x float64) float64 { return math.NaN() }, 0, 1, 1e-9); err == nil {
		t.Error("NaN endpoint accepted")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %g, want %g", i, v[i], want[i])
		}
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
	// Final point must be exact even when the step does not divide evenly.
	v2 := Linspace(0, 0.3, 4)
	if v2[len(v2)-1] != 0.3 {
		t.Errorf("Linspace end = %g, want exactly 0.3", v2[len(v2)-1])
	}
}

func TestSummaryWelford(t *testing.T) {
	var s Summary
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range data {
		s.Add(v)
	}
	if s.N() != 8 || s.Mean() != 5 {
		t.Errorf("mean = %g n = %d", s.Mean(), s.N())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %g, want %g", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestReservoirUniform(t *testing.T) {
	rng := NewRNG(21)
	res := NewReservoir(1000, rng)
	const n = 100000
	for i := 0; i < n; i++ {
		res.Add(float64(i))
	}
	if res.Seen() != n {
		t.Errorf("seen = %d", res.Seen())
	}
	// The retained sample's median should approximate the stream median.
	med, err := res.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(med-n/2) > n/20 {
		t.Errorf("reservoir median %g, want ~%d", med, n/2)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i) / 10) // 0.0 .. 9.9
	}
	h.Add(-1)
	h.Add(10)
	h.Add(11)
	if h.Total() != 103 {
		t.Errorf("total = %d", h.Total())
	}
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under/over = %d/%d", under, over)
	}
	for i := 0; i < h.Buckets(); i++ {
		if h.Count(i) != 10 {
			t.Errorf("bucket %d = %d, want 10", i, h.Count(i))
		}
	}
	lo, hi := h.BucketBounds(3)
	if lo != 3 || hi != 4 {
		t.Errorf("bounds of bucket 3 = [%g,%g)", lo, hi)
	}
}

func TestRelErrAndAlmostEqual(t *testing.T) {
	if RelErr(11, 10) != 0.1 {
		t.Error("RelErr wrong")
	}
	if RelErr(5, 0) != 5 {
		t.Error("RelErr at zero want should be absolute")
	}
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("AlmostEqual too strict")
	}
	if AlmostEqual(1.0, 1.1, 1e-3) {
		t.Error("AlmostEqual too lax")
	}
}
