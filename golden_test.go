package repro_test

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/pareto"
	"repro/internal/queueing"
)

// golden_test.go pins the rendered paper artifacts (Table 7, Table 8,
// and the Figure 9/10 Pareto sub-linearity classification) to files in
// testdata/. The analytical pipeline is fully deterministic, so any
// diff here is a real behavioural change, not noise. Regenerate with
//
//	go test -run TestGolden -update ./...
//
// and review the diff like any other code change. The seeded Table 4
// simulator comparison is deliberately excluded: its whole point is
// model-versus-simulation error, which its own statistical tests bound.
var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenSuite builds the default paper suite once for all golden tests.
var goldenSuite = sync.OnceValues(analysis.NewSuite)

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file instead when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	// Point at the first differing line to keep failures readable.
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		g, w := "<missing>", "<missing>"
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("%s line %d differs:\n got: %q\nwant: %q\n(re-run with -update to accept)",
				path, i+1, g, w)
		}
	}
	t.Fatalf("%s differs (line split hides it; re-run with -update to accept)", path)
}

func TestGoldenTable7(t *testing.T) {
	s, err := goldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Table7()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := analysis.RenderMetricsRows(&buf, "Table 7: single-node proportionality metrics", rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table7", buf.String())
}

func TestGoldenTable8(t *testing.T) {
	s, err := goldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Table8()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := analysis.RenderMetricsRows(&buf, "Table 8: 1 kW ladder proportionality metrics", rows); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table8", buf.String())
}

func TestGoldenParetoSublinear(t *testing.T) {
	s, err := goldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	fig, err := s.FigurePareto("EP", 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "workload=%s reference=%s sublinear=%d/%d\n",
		fig.Workload, fig.Reference.String(), fig.SublinearCount(), len(fig.Frontier))
	for i, pt := range fig.Frontier {
		fmt.Fprintf(&buf, "%-16s time=%.6g s energy=%.6g J sublinear=%v\n",
			pt.Config.String(), float64(pt.Time), float64(pt.Energy), fig.Sublinear[i])
	}
	checkGolden(t, "pareto_ep", buf.String())
}

// goldenKernelFrontier renders the EP frontier annotated with tail
// latencies under a ladder of kernel parameterizations — the small
// M/G/1 and M/M/k frontier sweeps the kernel goldens pin. Any change
// in a kernel's math moves these bytes.
func goldenKernelFrontier(t *testing.T, name, header string, specs []queueing.Spec, labels []string) {
	t.Helper()
	s, err := goldenSuite()
	if err != nil {
		t.Fatal(err)
	}
	fig, err := s.FigurePareto("EP", 6)
	if err != nil {
		t.Fatal(err)
	}
	cols := make([][]float64, len(specs))
	for i, spec := range specs {
		cols[i], err = pareto.AnnotateLatencies(context.Background(), fig.Frontier, 0.7, 95, spec, 0)
		if err != nil {
			t.Fatalf("annotating %s: %v", spec, err)
		}
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s u=0.7 p=95 workload=%s points=%d\n", header, fig.Workload, len(fig.Frontier))
	for i, pt := range fig.Frontier {
		fmt.Fprintf(&buf, "%-16s time=%.6g s", pt.Config.String(), float64(pt.Time))
		for c := range specs {
			fmt.Fprintf(&buf, " p95[%s]=%.9g", labels[c], cols[c][i])
		}
		fmt.Fprintln(&buf)
	}
	checkGolden(t, name, buf.String())
}

func TestGoldenKernelFrontierMG1(t *testing.T) {
	goldenKernelFrontier(t, "kernel_frontier_mg1", "kernel=mg1",
		[]queueing.Spec{
			{Kind: queueing.KindMG1, SCV: 0},
			{Kind: queueing.KindMG1, SCV: 1},
			{Kind: queueing.KindMG1, SCV: 4},
		},
		[]string{"scv=0", "scv=1", "scv=4"})
}

func TestGoldenKernelFrontierMMK(t *testing.T) {
	goldenKernelFrontier(t, "kernel_frontier_mmk", "kernel=mmk",
		[]queueing.Spec{
			{Kind: queueing.KindMMK, Servers: 1},
			{Kind: queueing.KindMMK, Servers: 4},
			{Kind: queueing.KindMMK, Servers: 16},
		},
		[]string{"k=1", "k=4", "k=16"})
}
