// Package repro is the public API of the reproduction of "On Energy
// Proportionality and Time-Energy Performance of Heterogeneous Clusters"
// (Ramapantulu, Loghin, Teo — IEEE CLUSTER 2016).
//
// The package re-exports the high-level workflow: build a node catalog,
// calibrate the paper's workloads, describe heterogeneous cluster
// configurations, evaluate the time-energy model, sweep utilization for
// the energy-proportionality metrics (DPR, IPR, EPM, LDR, PG, PPR),
// compute the energy-deadline Pareto frontier, and query 95th-percentile
// response times from the M/D/1 queueing model. The discrete-event
// cluster simulator that stands in for the paper's hardware testbed is
// exposed for validation studies.
//
// Quick start:
//
//	catalog := repro.DefaultCatalog()
//	workloads, _ := repro.PaperWorkloads(catalog)
//	a9, _ := catalog.Lookup("A9")
//	k10, _ := catalog.Lookup("K10")
//	cfg, _ := repro.NewConfig(repro.FullNodes(a9, 32), repro.FullNodes(k10, 12))
//	ep, _ := workloads.Lookup("EP")
//	res, _ := repro.Evaluate(cfg, ep)
//	fmt.Println(res.Time, res.Energy)
//
// See the examples directory for complete programs.
package repro

import (
	"repro/internal/adaptive"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/pareto"
	"repro/internal/powermeter"
	"repro/internal/queueing"
	"repro/internal/report"
	"repro/internal/simulator"
	"repro/internal/units"
	"repro/internal/workload"
)

// Re-exported core types. The internal packages carry the full
// documentation; these aliases are the supported public surface.
type (
	// NodeType describes one kind of server node (cores, DVFS ladder,
	// power parameters).
	NodeType = hardware.NodeType
	// PowerParams holds a node type's power-model parameters.
	PowerParams = hardware.PowerParams
	// DVFS describes a node type's frequency ladder.
	DVFS = hardware.DVFS
	// Catalog is a registry of node types.
	Catalog = hardware.Catalog
	// SwitchModel accounts for wimpy-side aggregation switches.
	SwitchModel = hardware.SwitchModel

	// Workload is a service-demand profile of one program.
	Workload = workload.Profile
	// Demand is the per-work-unit resource cost on one node type.
	Demand = workload.Demand
	// WorkloadRegistry holds workload profiles by name.
	WorkloadRegistry = workload.Registry

	// Group is a homogeneous slice of a configuration.
	Group = cluster.Group
	// Config is a heterogeneous cluster configuration.
	Config = cluster.Config
	// Limit bounds configuration-space enumeration for one node type.
	Limit = cluster.Limit
	// BudgetSpec describes a fixed peak-power envelope for mixes.
	BudgetSpec = cluster.BudgetSpec
	// Mix is one point on a budget substitution ladder.
	Mix = cluster.Mix

	// Result is the time-energy model outcome for one job.
	Result = model.Result
	// ModelOptions selects model variants.
	ModelOptions = model.Options

	// Analysis couples a model result with the utilization sweep.
	Analysis = energyprop.Analysis
	// Curve is a power-versus-utilization curve.
	Curve = energyprop.Curve
	// Metrics bundles DPR, IPR, EPM and LDR for one curve.
	Metrics = energyprop.Metrics
	// Reference normalizes configuration curves against a shared peak.
	Reference = energyprop.Reference

	// MD1 is the paper's M/D/1 queueing model.
	MD1 = queueing.MD1

	// ParetoPoint is one evaluated configuration on the energy-deadline
	// plane.
	ParetoPoint = pareto.Point

	// SimEffects are the simulator's second-order behaviours.
	SimEffects = simulator.Effects
	// SimResult is a discrete-event simulation outcome.
	SimResult = simulator.Result
	// ValidationRow is one model-versus-measured comparison.
	ValidationRow = simulator.ValidationRow
	// Meter is the simulated wall power instrument.
	Meter = powermeter.Meter

	// Suite drives the per-table/per-figure experiments.
	Suite = analysis.Suite
	// Series is one labelled figure data series.
	Series = report.Series

	// AdaptivePolicy constrains the dynamic-adaptation planner.
	AdaptivePolicy = adaptive.Policy
	// AdaptivePlan is a load-dependent configuration ensemble.
	AdaptivePlan = adaptive.Ensemble

	// Watts, Joules, Seconds, Hertz, Cycles and Bytes are the quantity
	// types used across the API.
	Watts   = units.Watts
	Joules  = units.Joules
	Seconds = units.Seconds
	Hertz   = units.Hertz
	Cycles  = units.Cycles
	Bytes   = units.Bytes
)

// NewWorkload creates an empty workload profile to which per-node-type
// demand vectors are added with SetDemand. jobUnits is the amount of
// work in one job; unit names the unit of work (e.g. "frames").
func NewWorkload(name, unit string, jobUnits float64) *Workload {
	return workload.NewProfile(name, workload.DomainSynthetic, unit, jobUnits)
}

// DefaultCatalog returns the A9/K10 catalog of the paper's Table 5 plus
// the repository's extension node types (A15, XeonE5).
func DefaultCatalog() *Catalog { return hardware.DefaultCatalog() }

// DefaultSwitch returns the paper's 20 W-per-8-wimpy-nodes switch model.
func DefaultSwitch() SwitchModel { return hardware.DefaultSwitch() }

// PaperWorkloads calibrates the six paper workloads (EP, memcached,
// x264, blackscholes, Julius, RSA-2048) against the catalog.
func PaperWorkloads(c *Catalog) (*WorkloadRegistry, error) { return workload.PaperRegistry(c) }

// PaperWorkloadNames lists the six paper workloads in table order.
func PaperWorkloadNames() []string { return workload.PaperNames() }

// NewConfig builds a validated heterogeneous configuration.
func NewConfig(groups ...Group) (Config, error) { return cluster.NewConfig(groups...) }

// FullNodes returns a group of n nodes with all cores at max frequency.
func FullNodes(t *NodeType, n int) Group { return cluster.FullNodes(t, n) }

// Evaluate runs the Table 2 time-energy model for one job.
func Evaluate(cfg Config, wl *Workload) (Result, error) {
	return model.Evaluate(cfg, wl, model.Options{})
}

// Analyze evaluates the model and prepares the utilization sweep with
// the default 100-panel resolution.
func Analyze(cfg Config, wl *Workload) (*Analysis, error) {
	return energyprop.Analyze(cfg, wl, model.Options{}, 100)
}

// ProportionalityMetrics is a convenience wrapper: model + sweep +
// Table 3 metrics in one call.
func ProportionalityMetrics(cfg Config, wl *Workload) (Metrics, error) {
	a, err := Analyze(cfg, wl)
	if err != nil {
		return Metrics{}, err
	}
	return a.Metrics(), nil
}

// ParetoFrontier sweeps the configuration space under limits with the
// memoized frontier engine (DESIGN.md §12, parallel across GOMAXPROCS
// per §16) and returns the energy-deadline frontier.
func ParetoFrontier(limits []Limit, wl *Workload) ([]ParetoPoint, error) {
	return pareto.FrontierSweep(limits, wl, model.Options{}, pareto.SweepOptions{})
}

// DefaultBudget returns the paper's 1 kW A9/K10 budget specification.
func DefaultBudget(c *Catalog) (BudgetSpec, error) { return cluster.DefaultBudget(c) }

// Simulate runs the discrete-event cluster simulator with the default
// effects and meter.
func Simulate(cfg Config, wl *Workload, seed uint64) (SimResult, error) {
	return simulator.Run(cfg, wl, simulator.DefaultEffects(), powermeter.DefaultMeter(), seed)
}

// Validate compares the analytical model against a simulated measured
// run (a Table 4 row).
func Validate(cfg Config, wl *Workload, seed uint64) (ValidationRow, error) {
	return simulator.Validate(cfg, wl, simulator.DefaultEffects(), powermeter.DefaultMeter(), seed)
}

// NewSuite builds the default experiment suite used by cmd/reproduce and
// the benchmark harness.
func NewSuite() (*Suite, error) { return analysis.NewSuite() }

// PlanAdaptive computes the load-dependent configuration ensemble over
// the candidates (see internal/adaptive): at each load fraction of the
// grid, the cheapest feasible candidate serves the traffic.
func PlanAdaptive(candidates []*Analysis, policy AdaptivePolicy, grid []float64) (*AdaptivePlan, error) {
	return adaptive.Plan(candidates, policy, grid)
}
