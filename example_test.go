package repro_test

// Godoc examples for the public facade. Each compiles into the package
// documentation and runs under go test with its output verified.

import (
	"fmt"

	"repro"
)

// ExampleEvaluate runs the time-energy model for the paper's reference
// heterogeneous configuration.
func ExampleEvaluate() {
	catalog := repro.DefaultCatalog()
	workloads, _ := repro.PaperWorkloads(catalog)
	a9, _ := catalog.Lookup("A9")
	k10, _ := catalog.Lookup("K10")
	cfg, _ := repro.NewConfig(repro.FullNodes(a9, 32), repro.FullNodes(k10, 12))
	ep, _ := workloads.Lookup("EP")

	res, _ := repro.Evaluate(cfg, ep)
	fmt.Printf("config: %s\n", cfg)
	fmt.Printf("idle power: %.1f W\n", float64(res.IdlePower))
	// Output:
	// config: 32 A9: 12 K10
	// idle power: 597.6 W
}

// ExampleProportionalityMetrics shows the Table 3 metrics for a single
// brawny node running EP (Table 7's first K10 row).
func ExampleProportionalityMetrics() {
	catalog := repro.DefaultCatalog()
	workloads, _ := repro.PaperWorkloads(catalog)
	k10, _ := catalog.Lookup("K10")
	cfg, _ := repro.NewConfig(repro.FullNodes(k10, 1))
	ep, _ := workloads.Lookup("EP")

	m, _ := repro.ProportionalityMetrics(cfg, ep)
	fmt.Printf("DPR=%.2f IPR=%.2f EPM=%.2f\n", m.DPR, m.IPR, m.EPM)
	// Output:
	// DPR=34.57 IPR=0.65 EPM=0.35
}

// ExampleMD1_ResponsePercentile computes a tail latency from the exact
// M/D/1 waiting-time distribution.
func ExampleMD1_ResponsePercentile() {
	q := repro.MD1{Lambda: 50, D: 0.01} // 50 jobs/s, 10 ms service: rho = 0.5
	p95, _ := q.ResponsePercentile(95)
	fmt.Printf("p95 = %.1f ms\n", 1000*p95)
	// Output:
	// p95 = 30.5 ms
}

// ExampleDefaultBudget derives the paper's 8:1 substitution ladder under
// the 1 kW budget.
func ExampleDefaultBudget() {
	catalog := repro.DefaultCatalog()
	budget, _ := repro.DefaultBudget(catalog)
	ladder, _ := budget.Ladder()
	for _, m := range ladder {
		fmt.Printf("%d A9 : %d K10\n", m.Wimpy, m.Brawny)
	}
	// Output:
	// 0 A9 : 16 K10
	// 32 A9 : 12 K10
	// 64 A9 : 8 K10
	// 96 A9 : 4 K10
	// 128 A9 : 0 K10
}

// ExampleNewWorkload defines a workload from raw service demands and
// evaluates it — the path for programs outside the paper's six.
func ExampleNewWorkload() {
	catalog := repro.DefaultCatalog()
	wl := repro.NewWorkload("sort", "records", 1e6)
	_ = wl.SetDemand("K10", repro.Demand{
		CoreCycles: 800, // cycles per record
		MemCycles:  300,
		Intensity:  0.6,
	})
	k10, _ := catalog.Lookup("K10")
	cfg, _ := repro.NewConfig(repro.FullNodes(k10, 4))
	res, _ := repro.Evaluate(cfg, wl)
	fmt.Printf("throughput: %.0f records/s\n", float64(res.Throughput))
	// Output:
	// throughput: 28000000 records/s
}
