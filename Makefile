# Convenience targets for the reproduction. Everything is plain `go`
# underneath; the Makefile only names the common invocations.

GO ?= go

.PHONY: all build test test-race race vet bench reproduce examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Alias: the observability docs and CI refer to `make race`.
race: test-race

# One benchmark iteration per experiment: regenerates every table/figure
# metric quickly. Drop -benchtime for full statistical runs. Output also
# lands in bench.out so successive runs can be diffed / benchstat'd.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./... | tee bench.out

# Regenerate every table, figure, extension study and SUMMARY.txt.
reproduce:
	$(GO) run ./cmd/reproduce -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplanning
	$(GO) run ./examples/latencysla
	$(GO) run ./examples/customnode
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/diurnal

fuzz:
	$(GO) test ./internal/cli/ -fuzz FuzzParseMix -fuzztime 30s

clean:
	rm -rf results bench.out
