# Convenience targets for the reproduction. Everything is plain `go`
# underneath; the Makefile only names the common invocations.

GO ?= go

.PHONY: all build test test-race race vet staticcheck check ci serve-smoke fleet-smoke logs-demo bench bench-queueing bench-frontier bench-frontier-smoke bench-serve bench-serve-smoke reproduce examples fuzz fuzz-smoke golden clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# staticcheck runs honnef.co/go/tools when the binary is on PATH. CI
# installs it on the runner; locally it is optional and skipped with a
# pointer rather than failing the gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping" \
			"(go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# check is the pre-commit gate: formatting, vet, build, tests, and the
# epserve end-to-end smoke run.
check:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) serve-smoke

# serve-smoke boots epserve on an ephemeral port, drives the loadgen mix
# for 5s, checks the /metrics exposition, and fails on any 5xx, a warm
# p99 above bound, or an unclean SIGTERM drain.
serve-smoke:
	GO="$(GO)" sh scripts/serve_smoke.sh

# fleet-smoke schema-checks every shipped scenario file, then runs the
# fleet simulator's scenario pipeline under the race detector on a tiny
# scenario (the shared-clock loop and chaos layer are the structures a
# data race would corrupt silently).
fleet-smoke:
	$(GO) run ./cmd/epfleet -check examples/scenarios/*.yaml
	$(GO) test -race -run 'TestExamplesRun|TestSeedOverrideChangesChaos' ./cmd/epfleet/
	$(GO) test -race -run 'TestSeedReproducibility$$|TestChaosBackgroundThrottleAndCaps' ./internal/fleet/

# logs-demo boots epserve with debug-level JSON logs on an ephemeral
# port, drives a short loadgen burst, and prints the structured access
# logs — the quickest way to see the request-scoped observability
# (request IDs, per-request attribution, slow-request sampling) live.
logs-demo:
	GO="$(GO)" sh scripts/logs_demo.sh

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Alias: the observability docs and CI refer to `make race`. The extra
# invocations hammer the queueing percentile cache and the full serve
# path specifically — the shared-mutable structures concurrent HTTP
# load contends on.
race: test-race
	$(GO) test -race -run TestPercentileCacheConcurrent -count 2 ./internal/queueing/
	$(GO) test -race -run TestServeRaceHammer -count 2 ./internal/serve/
	$(GO) test -race -count 2 ./internal/replay/

# ci is the full gate the workflow runs: formatting, vet, tier-1
# build+test, targeted race runs over the concurrency-heavy packages
# (queueing percentile cache, serve streaming, replay fan-out, and the
# memoized frontier engine's shared unit-calc table), the frontier
# fast-vs-reference differential smoke over the full footnote-4 space,
# the epserve end-to-end smoke, the fleet-scenario smoke (schema checks
# plus race-detected runs), and a short fuzz smoke over the parser and
# kernel differential targets.
ci:
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/queueing/ ./internal/serve/ ./internal/replay/
	$(GO) test -run TestTableDifferentialPaperSpace ./internal/model/
	$(GO) test -race -short -run 'TestFastSweep|TestFrontier' ./internal/pareto/
	$(MAKE) bench-frontier-smoke
	$(MAKE) serve-smoke
	$(MAKE) fleet-smoke
	$(MAKE) bench-serve-smoke
	$(MAKE) fuzz-smoke

# One benchmark iteration per experiment: regenerates every table/figure
# metric quickly. Drop -benchtime for full statistical runs. Output also
# lands in bench.out so successive runs can be diffed / benchstat'd.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./... | tee bench.out

# Queueing-kernel benchmarks with the headline speedups distilled into
# BENCH_queueing.json (fast Crommelin kernel and percentile cache versus
# the preserved reference implementation, plus the M/G/1 and Erlang-C
# kernels behind the same interface).
bench-queueing:
	$(GO) test -bench 'BenchmarkWaitCDF|BenchmarkResponsePercentile|BenchmarkMG1|BenchmarkMMK|BenchmarkErlangC' \
		-benchmem -run '^$$' ./internal/queueing/ | tee bench_queueing.out
	$(GO) run ./internal/tools/benchjson bench_queueing.out > BENCH_queueing.json
	@echo wrote BENCH_queueing.json

# Frontier-engine benchmarks over the paper's footnote-4 space (36,380
# configurations), distilled into BENCH_frontier.json: sweep and
# per-evaluation speedups of the memoized engine versus the preserved
# per-config reference, configs/s throughput, and the allocs/op proof
# that the hot path stays off the heap.
bench-frontier:
	$(GO) test -bench 'BenchmarkFrontierSweep|BenchmarkEvaluate(Fast|Reference)$$' \
		-benchmem -run '^$$' ./internal/pareto/ | tee bench_frontier.out
	$(GO) run ./internal/tools/benchfrontier bench_frontier.out > BENCH_frontier.json
	@echo wrote BENCH_frontier.json

# bench-frontier-smoke is the CI variant: one iteration each of the
# sweep benchmarks (serial, warm-table, and the parallel worker ladder)
# piped through the benchfrontier distiller — proves the measurement
# harness and the parallel engine end to end without committing numbers.
bench-frontier-smoke:
	$(GO) test -bench 'BenchmarkFrontierSweep' -benchmem -benchtime=1x \
		-run '^$$' ./internal/pareto/ | $(GO) run ./internal/tools/benchfrontier > /dev/null
	@echo bench-frontier smoke ok

# Serving-capacity benchmark: boots epserve in-process and binary-
# searches the max sustained open-loop arrival rate at the p99 SLO for
# scalar GETs versus 64-item batch POSTs, distilled into
# BENCH_serve.json (headline: batch per-item throughput multiple).
# bench-serve-smoke is the CI variant — short probes, capped search —
# proving the harness end to end without chasing stable numbers.
bench-serve:
	$(GO) run ./internal/tools/benchserve -out BENCH_serve.json

bench-serve-smoke:
	$(GO) run ./internal/tools/benchserve -probe 250ms -smoke > /dev/null

# Regenerate every table, figure, extension study and SUMMARY.txt.
reproduce:
	$(GO) run ./cmd/reproduce -out results

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/capacityplanning
	$(GO) run ./examples/latencysla
	$(GO) run ./examples/customnode
	$(GO) run ./examples/adaptive
	$(GO) run ./examples/diurnal

# fuzz runs each target for 30s; fuzz-smoke is the CI variant, a few
# seconds per target — enough to replay the corpus and catch gross
# regressions without stalling the gate.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -run '^$$' ./internal/cli/ -fuzz FuzzParseMix -fuzztime $(FUZZTIME)
	$(GO) test -run '^$$' ./internal/replay/ -fuzz FuzzParseCSV -fuzztime $(FUZZTIME)
	$(GO) test -run '^$$' ./internal/replay/ -fuzz FuzzParseJSON -fuzztime $(FUZZTIME)
	$(GO) test -run '^$$' ./internal/queueing/ -fuzz FuzzPercentileCacheDifferential -fuzztime $(FUZZTIME)
	$(GO) test -run '^$$' ./internal/queueing/ -fuzz FuzzKernelDifferential -fuzztime $(FUZZTIME)

fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=5s

# golden regenerates the testdata/ golden files (Table 7, Table 8, the
# Pareto sub-linearity classification). Review the diff before
# committing: any change is a behavioural change of the pipeline.
golden:
	$(GO) test -run TestGolden -update .

clean:
	rm -rf results bench.out bench_queueing.out bench_frontier.out
