// Command epfleet runs a declarative fleet scenario: a YAML file
// describing a heterogeneous fleet, its offered load, background chaos
// (failures, DVFS throttling, power caps, stragglers), timed events and
// end-of-run assertions. See docs/SCENARIOS.md for the language and
// examples/scenarios/ for runnable files.
//
// Usage:
//
//	epfleet scenario.yaml                 run and print the text summary
//	epfleet -json scenario.yaml           machine-readable result
//	epfleet -seed 7 scenario.yaml         override the scenario seed
//	epfleet -check a.yaml b.yaml ...      validate files without running
//
// The exit status is non-zero when the scenario fails to load, the run
// errors, or any assertion fails.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/fleet"
	"repro/internal/hardware"
	"repro/internal/scenario"
	"repro/internal/workload"
)

type options struct {
	seed      uint64
	seedSet   bool
	jsonOut   bool
	check     bool
	chaosLog  bool
	nodes     string
	workloads string
}

func main() {
	var o options
	flag.Uint64Var(&o.seed, "seed", 0, "override the scenario's seed")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the result as JSON")
	flag.BoolVar(&o.check, "check", false, "parse and build the scenario files, report problems, do not run")
	flag.BoolVar(&o.chaosLog, "chaos-log", false, "include the chaos event log in the output")
	flag.StringVar(&o.nodes, "nodes", "", "JSON file with extra node types")
	flag.StringVar(&o.workloads, "workloads", "", "JSON file with extra workload profiles")
	tel := cli.AddTelemetryFlags(nil)
	flag.Parse()
	o.seedSet = false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			o.seedSet = true
		}
	})

	if err := tel.Start(); err != nil {
		cli.Fatal("epfleet", err)
	}
	err := run(o, flag.Args(), os.Stdout)
	if cerr := tel.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cli.Fatal("epfleet", err)
	}
}

func run(o options, args []string, w io.Writer) error {
	catalog, registry, err := cli.LoadEnvironment(o.nodes, o.workloads)
	if err != nil {
		return err
	}

	if o.check {
		if len(args) == 0 {
			return errors.New("epfleet: -check needs at least one scenario file")
		}
		bad := 0
		for _, path := range args {
			if err := checkOne(path, catalog, registry, w); err != nil {
				fmt.Fprintf(w, "%s: %v\n", path, err)
				bad++
			}
		}
		if bad > 0 {
			return fmt.Errorf("epfleet: %d of %d scenario files failed validation", bad, len(args))
		}
		return nil
	}

	if len(args) != 1 {
		return errors.New("epfleet: need exactly one scenario file (or -check with several)")
	}
	sc, err := scenario.Load(args[0])
	if err != nil {
		return err
	}
	if o.seedSet {
		sc.Seed = o.seed
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		return err
	}
	sim, err := fleet.New(spec)
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	fails := sc.CheckAll(res.Summary)

	if o.jsonOut {
		if err := writeJSON(w, sc, res, fails, o.chaosLog); err != nil {
			return err
		}
	} else {
		writeText(w, sc, res, fails, o.chaosLog)
	}
	if len(fails) > 0 {
		return fmt.Errorf("epfleet: %d of %d assertions failed", len(fails), len(sc.Asserts))
	}
	return nil
}

func checkOne(path string, catalog *hardware.Catalog, registry *workload.Registry, w io.Writer) error {
	sc, err := scenario.Load(path)
	if err != nil {
		return err
	}
	spec, err := sc.Build(catalog, registry)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: ok (%d nodes, %v, %d events, %d assertions)\n",
		path, spec.NodeCount(), spec.Duration, len(sc.Events), len(sc.Asserts))
	return nil
}

// assertionResult is the JSON form of one checked assertion.
type assertionResult struct {
	Assertion string `json:"assertion"`
	Pass      bool   `json:"pass"`
	Detail    string `json:"detail,omitempty"`
}

func assertionResults(sc *scenario.Scenario, sum fleet.Summary) []assertionResult {
	out := make([]assertionResult, 0, len(sc.Asserts))
	for _, a := range sc.Asserts {
		r := assertionResult{Assertion: a.String(), Pass: true}
		if err := a.Check(sum); err != nil {
			r.Pass = false
			r.Detail = err.Error()
		}
		out = append(out, r)
	}
	return out
}

func writeJSON(w io.Writer, sc *scenario.Scenario, res *fleet.Result, fails []error, chaosLog bool) error {
	out := struct {
		Summary    fleet.Summary       `json:"summary"`
		Assertions []assertionResult   `json:"assertions,omitempty"`
		ChaosCount int                 `json:"chaos_event_count"`
		ChaosLog   []fleet.ChaosRecord `json:"chaos_log,omitempty"`
	}{
		Summary:    res.Summary,
		Assertions: assertionResults(sc, res.Summary),
		ChaosCount: len(res.ChaosLog),
	}
	if chaosLog {
		out.ChaosLog = res.ChaosLog
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func writeText(w io.Writer, sc *scenario.Scenario, res *fleet.Result, fails []error, chaosLog bool) {
	fmt.Fprint(w, res.Summary.String())
	fmt.Fprintf(w, "chaos events: %d\n", len(res.ChaosLog))
	if chaosLog {
		for _, r := range res.ChaosLog {
			fmt.Fprintf(w, "  t=%-10.3f node %-5d %s\n", r.Time, r.Node, r.Kind)
		}
	}
	if len(sc.Asserts) > 0 {
		fmt.Fprintf(w, "assertions: %d/%d passed\n", len(sc.Asserts)-len(fails), len(sc.Asserts))
		for _, r := range assertionResults(sc, res.Summary) {
			mark := "PASS"
			if !r.Pass {
				mark = "FAIL"
			}
			fmt.Fprintf(w, "  %s  %s", mark, r.Assertion)
			if r.Detail != "" {
				fmt.Fprintf(w, "  (%s)", r.Detail)
			}
			fmt.Fprintln(w)
		}
	}
}
