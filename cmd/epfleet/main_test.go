package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fleet"
)

const examplesDir = "../../examples/scenarios"

func exampleFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(examplesDir, "*.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no example scenarios found")
	}
	return files
}

// TestExamplesRun executes every shipped example end to end; their
// embedded assertions double as expectations.
func TestExamplesRun(t *testing.T) {
	for _, path := range exampleFiles(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			var sb strings.Builder
			if err := run(options{}, []string{path}, &sb); err != nil {
				t.Fatalf("%v\noutput:\n%s", err, sb.String())
			}
			if !strings.Contains(sb.String(), "PASS") && strings.Contains(sb.String(), "assertions") {
				t.Errorf("no passing assertions reported:\n%s", sb.String())
			}
		})
	}
}

func TestCheckMode(t *testing.T) {
	var sb strings.Builder
	if err := run(options{check: true}, exampleFiles(t), &sb); err != nil {
		t.Fatalf("%v\noutput:\n%s", err, sb.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if !strings.Contains(line, ": ok (") {
			t.Errorf("check line not ok: %q", line)
		}
	}

	// A broken file is reported with a non-zero result.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.yaml")
	if err := os.WriteFile(bad, []byte("workload: EP\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run(options{check: true}, []string{bad}, &sb); err == nil {
		t.Error("-check accepted an invalid scenario")
	}
}

func TestJSONOutput(t *testing.T) {
	path := filepath.Join(examplesDir, "steady-state.yaml")
	var sb strings.Builder
	if err := run(options{jsonOut: true}, []string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Summary    fleet.Summary `json:"summary"`
		Assertions []struct {
			Pass bool `json:"pass"`
		} `json:"assertions"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &out); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if out.Summary.Nodes != 10 || out.Summary.Name != "steady-state" {
		t.Errorf("summary = %+v", out.Summary)
	}
	for i, a := range out.Assertions {
		if !a.Pass {
			t.Errorf("assertion %d failed", i)
		}
	}
}

func TestSeedOverrideChangesChaos(t *testing.T) {
	path := filepath.Join(examplesDir, "chaos-fleet.yaml")
	render := func(o options) string {
		var sb strings.Builder
		if err := run(o, []string{path}, &sb); err != nil {
			t.Fatalf("%v\noutput:\n%s", err, sb.String())
		}
		return sb.String()
	}
	base := render(options{jsonOut: true})
	same := render(options{jsonOut: true})
	if base != same {
		t.Error("same scenario and seed produced different output")
	}
	other := render(options{jsonOut: true, seedSet: true, seed: 7})
	if base == other {
		t.Error("overriding the seed did not change the run")
	}
}

func TestAssertionFailureIsAnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fail.yaml")
	src := `
workload: EP
duration: 10s
fleet:
  - type: A9
    count: 2
assertions:
  - metric: failures
    op: ">"
    value: 100
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := run(options{}, []string{path}, &sb)
	if err == nil || !strings.Contains(err.Error(), "assertions failed") {
		t.Fatalf("err = %v, want assertion failure", err)
	}
	if !strings.Contains(sb.String(), "FAIL") {
		t.Errorf("failure not rendered:\n%s", sb.String())
	}
}
