// Command epprop runs the energy-proportionality analysis for one
// configuration and workload: the Table 3 metrics, the power curve
// across utilization, the PPR curve and the 95th-percentile response
// time from the M/D/1 queue.
//
// Usage:
//
//	epprop -workload EP -mix 32xA9,12xK10 [-percentile 95] [-ref 32xA9,12xK10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/model"
	"repro/internal/pareto"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	wlName := flag.String("workload", "EP", "workload name")
	mix := flag.String("mix", "32xA9,12xK10", "cluster mix, e.g. 32xA9,12xK10")
	ref := flag.String("ref", "", "reference mix to normalize against (empty = own peak)")
	pct := flag.Float64("percentile", 95, "response-time percentile")
	plot := flag.Bool("plot", false, "render ASCII plots of the curves")
	frontier := flag.Bool("frontier", false, "place the mix against the Pareto frontier of its own design space")
	nodes := flag.String("nodes", "", "JSON file with extra node types")
	wls := flag.String("workloads", "", "JSON file with extra workload profiles")
	workers := flag.Int("workers", 0, "parallel workers for the percentile sweep (0 = GOMAXPROCS)")
	flag.Parse()

	if err := run(*wlName, *mix, *ref, *pct, *plot, *frontier, *nodes, *wls, *workers); err != nil {
		cli.Fatal("epprop", err)
	}
}

func run(wlName, mix, refMix string, pct float64, plot, frontier bool, nodesPath, wlsPath string, workers int) error {
	catalog, registry, err := cli.LoadEnvironment(nodesPath, wlsPath)
	if err != nil {
		return err
	}
	cfg, err := cli.ParseMix(catalog, mix, 0, 0)
	if err != nil {
		return err
	}
	wl, err := registry.Lookup(wlName)
	if err != nil {
		return err
	}
	a, err := energyprop.Analyze(cfg, wl, model.Options{}, 200)
	if err != nil {
		return err
	}
	m := a.Metrics()
	fmt.Printf("configuration: %s   workload: %s\n", cfg, wl.Name)
	fmt.Printf("idle %v   peak %v   service time %v\n",
		a.Result.IdlePower, a.Result.BusyPower, a.Result.Time)
	fmt.Printf("DPR=%.2f  IPR=%.3f  EPM=%.3f  LDR=%.3f  chordLDR=%+.3f\n\n",
		m.DPR, m.IPR, m.EPM, m.LDR, m.ChordLDR)

	var ref *energyprop.Reference
	if refMix != "" {
		refCfg, err := cli.ParseMix(catalog, refMix, 0, 0)
		if err != nil {
			return err
		}
		refA, err := energyprop.Analyze(refCfg, wl, model.Options{}, 200)
		if err != nil {
			return err
		}
		ref = &energyprop.Reference{PeakPower: float64(refA.Result.BusyPower)}
		fmt.Printf("normalizing against reference %s (peak %v)\n\n", refCfg, refA.Result.BusyPower)
	}

	// The percentile column is the expensive part of the table (one
	// root-find per utilization); fan it out before printing serially.
	us := stats.Linspace(0.1, 0.95, 18)
	resps, err := a.ResponsePercentilesAt(us, pct, workers)
	if err != nil {
		return err
	}

	fmt.Printf("%6s  %10s  %8s  %12s  %8s  %14s\n",
		"util%", "power[W]", "%peak", "PPR", "PG", fmt.Sprintf("p%.0f resp[s]", pct))
	for i, u := range us {
		norm := 100 * a.NormalizedPowerAt(u)
		pg := energyprop.PG(a.CurveRes, u)
		if ref != nil {
			norm = 100 * ref.NormalizedAt(a.CurveRes, u)
			pg = ref.PG(a.CurveRes, u)
		}
		resp := resps[i]
		marker := ""
		if pg < 0 {
			marker = "  <- sub-linear"
		}
		fmt.Printf("%6.0f  %10.2f  %8.2f  %12.5g  %+8.3f  %14.6g%s\n",
			100*u, a.PowerAt(u), norm, a.PPRAt(u), pg, resp, marker)
	}

	if frontier {
		if err := placeOnFrontier(cfg, wl, workers); err != nil {
			return err
		}
	}

	if plot {
		grid := stats.Linspace(0.05, 1, 96)
		xs := make([]float64, len(grid))
		norm := make([]float64, len(grid))
		ideal := make([]float64, len(grid))
		for i, u := range grid {
			xs[i] = 100 * u
			ideal[i] = 100 * u
			if ref != nil {
				norm[i] = 100 * ref.NormalizedAt(a.CurveRes, u)
			} else {
				norm[i] = 100 * a.NormalizedPowerAt(u)
			}
		}
		fmt.Println()
		err := report.RenderASCII(os.Stdout, []report.Series{
			{Label: "ideal", X: xs, Y: ideal},
			{Label: cfg.String(), X: xs, Y: norm},
		}, report.PlotOptions{Width: 64, Height: 18, XLabel: "utilization %", YLabel: "% of peak power"})
		if err != nil {
			return err
		}
	}
	return nil
}

// placeOnFrontier sweeps the design space spanned by the mix's own node
// types (up to the mix's node counts, cores and DVFS free) with the
// memoized engine and reports where the mix sits relative to the
// time-energy Pareto frontier of that space.
func placeOnFrontier(cfg cluster.Config, wl *workload.Profile, workers int) error {
	limits := make([]cluster.Limit, 0, len(cfg.Groups))
	for _, g := range cfg.Groups {
		limits = append(limits, cluster.Limit{Type: g.Type, MaxNodes: g.Count})
	}
	total := cluster.SpaceSize(limits)

	var st pareto.SweepStats
	front, err := pareto.FrontierSweep(limits, wl, model.Options{},
		pareto.SweepOptions{Workers: workers, Stats: &st})
	if err != nil {
		return err
	}
	fmt.Printf("\nfrontier of the %s design space (%d configurations, %d evaluated, %d pruned): %d points\n",
		cfg, total, st.Evaluated, st.Pruned, len(front))

	own, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		return err
	}
	onFrontier := false
	for _, p := range front {
		if p.Config.Key() == cfg.Key() {
			onFrontier = true
			break
		}
	}
	if onFrontier {
		fmt.Printf("the mix is ON the frontier (T=%v E=%v)\n", own.Time, own.Energy)
	} else {
		fmt.Printf("the mix is OFF the frontier (T=%v E=%v)\n", own.Time, own.Energy)
		// The frontier is sorted by time, so the first dominator is the
		// fastest configuration beating the mix on both axes.
		for _, p := range front {
			if p.Time <= own.Time && p.Energy <= own.Energy {
				fmt.Printf("dominated by %-22s T=%v E=%v\n", p.Config, p.Time, p.Energy)
				break
			}
		}
	}
	if best, ok := pareto.MinEDP(front); ok {
		fmt.Printf("min-EDP on frontier: %-22s T=%v E=%v EDP=%.4g\n",
			best.Config, best.Time, best.Energy, best.Result.EDP())
	}
	return nil
}
