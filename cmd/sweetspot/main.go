// Command sweetspot recommends a cluster configuration for a workload
// under an execution-time deadline, an energy budget and a peak-power
// budget — the paper's "sweet region" decision (Section I: "for a given
// application with a time deadline and energy budget, it is non-trivial
// to determine an energy-proportional configuration among the large
// system configuration space").
//
// Usage:
//
//	sweetspot -workload blackscholes -deadline 5s [-energy 3kJ] [-power 1000]
//	          [-maxA9 32] [-maxK10 12] [-dvfs]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/pareto"
	"repro/internal/telemetry"
	"repro/internal/units"
)

func main() {
	wlName := flag.String("workload", "blackscholes", "workload name")
	deadline := flag.Duration("deadline", 5*time.Second, "execution-time deadline per job")
	energyJ := flag.Float64("energy", 0, "energy budget per job in joules (0 = unconstrained)")
	powerW := flag.Float64("power", 0, "peak-power budget in watts incl. switches (0 = unconstrained)")
	maxA9 := flag.Int("maxA9", 32, "maximum wimpy nodes")
	maxK10 := flag.Int("maxK10", 12, "maximum brawny nodes")
	dvfs := flag.Bool("dvfs", false, "also explore reduced cores and frequencies")
	noPrune := flag.Bool("noprune", false, "disable bound-based subtree pruning in the sweep")
	nodes := flag.String("nodes", "", "JSON file with extra node types")
	wls := flag.String("workloads", "", "JSON file with extra workload profiles")
	progress := flag.Int("progress", 0, "print exploration progress to stderr every N configurations (0 disables)")
	workers := flag.Int("workers", 0, "parallel evaluation workers (0 = GOMAXPROCS)")
	tel := cli.AddTelemetryFlags(nil)
	flag.Parse()

	if err := tel.Start(); err != nil {
		cli.Fatal("sweetspot", err)
	}
	err := run(*wlName, *deadline, *energyJ, *powerW, *maxA9, *maxK10, *dvfs, *noPrune, *nodes, *wls, *progress, *workers)
	if cerr := tel.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cli.Fatal("sweetspot", err)
	}
}

func run(wlName string, deadline time.Duration, energyJ, powerW float64, maxA9, maxK10 int, dvfs, noPrune bool, nodesPath, wlsPath string, progressEvery, workers int) error {
	catalog, registry, err := cli.LoadEnvironment(nodesPath, wlsPath)
	if err != nil {
		return err
	}
	wl, err := registry.Lookup(wlName)
	if err != nil {
		return err
	}
	a9, err := catalog.Lookup("A9")
	if err != nil {
		return err
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		return err
	}
	sw := hardware.DefaultSwitch()

	limits := []cluster.Limit{
		{Type: a9, MaxNodes: maxA9, FixCoresAndFreq: !dvfs},
		{Type: k10, MaxNodes: maxK10, FixCoresAndFreq: !dvfs},
	}
	total := cluster.SpaceSize(limits)
	fmt.Printf("exploring %d configurations for %s...\n", total, wl.Name)
	pr := telemetry.NewProgress(os.Stderr, "sweetspot", int64(total), int64(progressEvery))

	// The peak-power budget prunes before model evaluation via the sweep
	// filter; everything surviving it fans out across the worker pool.
	var filter func(cluster.Config) bool
	if powerW > 0 {
		filter = func(cfg cluster.Config) bool {
			peak := float64(cfg.NominalPeak()) + float64(sw.Power(cfg.Count("A9")))
			return peak <= powerW
		}
	}
	// Install an ephemeral registry when telemetry is off so the pruning
	// counter is still observable in the summary line.
	reg := telemetry.Global()
	if reg == nil {
		reg = telemetry.New()
		telemetry.SetGlobal(reg)
		defer telemetry.SetGlobal(nil)
	}
	prunedC := reg.Counter("pareto.configs_pruned")
	prunedBefore := prunedC.Value()
	frontier, err := pareto.FrontierSweep(limits, wl, model.Options{}, pareto.SweepOptions{
		Workers:  workers,
		Progress: pr,
		Filter:   filter,
		NoPrune:  noPrune,
	})
	if err != nil {
		return err
	}
	if pruned := prunedC.Value() - prunedBefore; pruned > 0 {
		fmt.Printf("pruned %d configurations via frontier lower bounds\n", pruned)
	}
	if len(frontier) == 0 {
		return fmt.Errorf("no feasible configuration under the power budget")
	}

	dl := units.Seconds(deadline.Seconds())
	var budget units.Joules
	if energyJ > 0 {
		budget = units.Joules(energyJ)
	}
	sweet := pareto.SweetRegion(frontier, dl, budget)
	fmt.Printf("Pareto frontier: %d configurations; sweet region under %v deadline", len(frontier), dl)
	if budget > 0 {
		fmt.Printf(" and %v energy budget", budget)
	}
	fmt.Printf(": %d\n\n", len(sweet))

	if len(sweet) == 0 {
		fmt.Println("no configuration satisfies the constraints; closest frontier points:")
		for i, p := range frontier {
			if i >= 5 {
				break
			}
			fmt.Printf("  %-22s T=%-10v E=%v\n", p.Config, p.Time, p.Energy)
		}
		return fmt.Errorf("constraints infeasible")
	}

	best, ok := pareto.MinEnergyUnderDeadline(sweet, dl)
	if !ok {
		return fmt.Errorf("internal: sweet region without deadline-feasible point")
	}
	fmt.Println("sweet region (deadline-feasible frontier):")
	for _, p := range sweet {
		marker := " "
		if p.Config.Key() == best.Config.Key() {
			marker = "*"
		}
		fmt.Printf(" %s %-22s T=%-10v E=%-10v peak=%v\n",
			marker, p.Config, p.Time, p.Energy, p.Result.BusyPower)
	}

	a, err := energyprop.Analyze(best.Config, wl, model.Options{}, 100)
	if err != nil {
		return err
	}
	m := a.Metrics()
	fmt.Printf("\nrecommended: %s\n", best.Config)
	fmt.Printf("  time %v (headroom %.1f%%), energy %v\n",
		best.Time, 100*(1-float64(best.Time)/math.Max(float64(dl), 1e-12)), best.Energy)
	fmt.Printf("  idle %v, peak %v, DPR %.1f%%, IPR %.3f\n",
		a.Result.IdlePower, a.Result.BusyPower, m.DPR, m.IPR)
	p95, err := a.ResponsePercentileAt(0.7, 95)
	if err == nil {
		fmt.Printf("  p95 response at 70%% utilization: %.4g s\n", p95)
	}
	return nil
}
