package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/replay"
)

func baseOptions() options {
	return options{
		workload:    "EP",
		budget:      true,
		shape:       "diurnal",
		mean:        0.35,
		amplitude:   0.3,
		duration:    24 * time.Hour,
		step:        30 * time.Minute,
		sloPct:      95,
		percentiles: "95,99",
		hysteresis:  0.05,
		format:      "text",
	}
}

func TestRunTextBudgetDiurnal(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), baseOptions(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"static over 5 candidates", "total energy", "p95 response"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunJSONAdaptiveMixes(t *testing.T) {
	o := baseOptions()
	o.budget = false
	o.mixes = "32xA9,12xK10; 25xA9,5xK10"
	o.adaptive = true
	o.slo = 500 * time.Millisecond
	o.format = "json"
	var sb strings.Builder
	if err := run(context.Background(), o, &sb); err != nil {
		t.Fatal(err)
	}
	var res replay.Result
	if err := json.Unmarshal([]byte(sb.String()), &res); err != nil {
		t.Fatalf("output is not a Result: %v", err)
	}
	if !res.Summary.Adaptive || res.Summary.Steps != 48 {
		t.Fatalf("summary = %+v", res.Summary)
	}
	if len(res.Steps) != 48 {
		t.Fatalf("steps = %d, want 48", len(res.Steps))
	}
	if len(res.Summary.Candidates) != 2 {
		t.Fatalf("candidates = %v", res.Summary.Candidates)
	}
}

func TestRunCSVFromTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := os.WriteFile(path, []byte("t,load\n0,0.2\n300,0.4\n600,0.6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOptions()
	o.tracePath = path
	o.format = "csv"
	var sb strings.Builder
	if err := run(context.Background(), o, &sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 rows, got %d lines:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "t,dt,load,chosen,config,") {
		t.Fatalf("bad header %q", lines[0])
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n < 10 {
			t.Fatalf("row %q has %d commas", line, n)
		}
	}
}

func TestRunJSONTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	body := `{"name":"mini","points":[{"t":0,"load":0.2},{"t":300,"load":0.5}]}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOptions()
	o.tracePath = path
	var sb strings.Builder
	if err := run(context.Background(), o, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "replay: mini") {
		t.Fatalf("trace name not reported:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		want   string
	}{
		{"no candidates", func(o *options) { o.budget = false }, "-budget or -mixes"},
		{"bad mix", func(o *options) { o.budget = false; o.mixes = "wat" }, ""},
		{"bad shape", func(o *options) { o.shape = "square" }, "unknown shape"},
		{"bad format", func(o *options) { o.format = "yaml" }, "unknown format"},
		{"bad percentiles", func(o *options) { o.percentiles = "ninety" }, "bad percentile"},
		{"empty percentiles", func(o *options) { o.percentiles = "," }, "no percentiles"},
		{"bad workload", func(o *options) { o.workload = "nope" }, ""},
		{"bad levels", func(o *options) { o.shape = "steps"; o.levels = "0.1,x" }, "bad level"},
		{"zero step", func(o *options) { o.step = 0 }, "must be positive"},
		{"missing trace file", func(o *options) { o.tracePath = "/does/not/exist.csv" }, ""},
		{"bad trace ext", func(o *options) { o.tracePath = "/tmp/trace.xml" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := baseOptions()
			tc.mutate(&o)
			err := run(context.Background(), o, &strings.Builder{})
			if err == nil {
				t.Fatal("run succeeded")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not contain %q", err, tc.want)
			}
		})
	}
}

func TestRunRejectsNonMonotonicTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(path, []byte("0,0.2\n600,0.4\n300,0.6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOptions()
	o.tracePath = path
	err := run(context.Background(), o, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "non-monotonic") {
		t.Fatalf("err = %v, want non-monotonic rejection", err)
	}
}
