// Command epreplay replays a utilization trace — synthetic (diurnal,
// flash crowd, ramp, steps) or loaded from CSV/JSON — through a set of
// candidate cluster configurations, reporting the cumulative energy
// ledger, the gap against an ideal energy-proportional system, tail
// latency SLO compliance and configuration-switch churn. With -adaptive
// the planner re-provisions between steps (hysteresis and switch energy
// included); otherwise the fastest candidate serves the whole trace.
//
// Usage:
//
//	epreplay -budget -shape diurnal -mean 0.35 -amplitude 0.3
//	epreplay -mixes "32xA9,12xK10;25xA9,5xK10" -adaptive -slo 200ms
//	epreplay -trace-file day.csv -format json -o replay.json
//
// Note the flag split: -trace-file names the utilization trace to
// replay (CSV/JSON input), while the shared telemetry flag -trace
// writes a Chrome trace-event file of this process's own execution
// (Perfetto-loadable output). They are unrelated; see README.md.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/adaptive"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/loadtrace"
	"repro/internal/model"
	"repro/internal/replay"
)

type options struct {
	workload     string
	mixes        string
	budget       bool
	tracePath    string
	shape        string
	mean         float64
	amplitude    float64
	base         float64
	peak         float64
	from         float64
	to           float64
	levels       string
	duration     time.Duration
	step         time.Duration
	adaptive     bool
	slo          time.Duration
	sloPct       float64
	percentiles  string
	hysteresis   float64
	switchEnergy float64
	workers      int
	format       string
	nodes        string
	workloads    string
}

func main() {
	var o options
	flag.StringVar(&o.workload, "workload", "EP", "workload name")
	flag.StringVar(&o.mixes, "mixes", "", "semicolon-separated candidate mixes, e.g. \"32xA9,12xK10;25xA9,5xK10\"")
	flag.BoolVar(&o.budget, "budget", false, "use the paper's 1 kW-budget substitution ladder as the candidate set")
	// -trace is taken by the shared telemetry flags (Chrome trace output).
	flag.StringVar(&o.tracePath, "trace-file", "", "utilization trace file (.csv or .json); empty generates -shape")
	flag.StringVar(&o.shape, "shape", "diurnal", "synthetic shape: diurnal, flashcrowd, ramp or steps")
	flag.Float64Var(&o.mean, "mean", 0.35, "diurnal mean load fraction")
	flag.Float64Var(&o.amplitude, "amplitude", 0.3, "diurnal amplitude")
	flag.Float64Var(&o.base, "base", 0.2, "flashcrowd base load")
	flag.Float64Var(&o.peak, "peak", 0.9, "flashcrowd peak load")
	flag.Float64Var(&o.from, "from", 0.1, "ramp start load")
	flag.Float64Var(&o.to, "to", 0.8, "ramp end load")
	flag.StringVar(&o.levels, "levels", "0.15,0.55,0.85,0.45", "steps: comma-separated load levels")
	flag.DurationVar(&o.duration, "duration", 24*time.Hour, "synthetic trace duration")
	flag.DurationVar(&o.step, "step", 5*time.Minute, "synthetic trace sampling step (288 steps per default day)")
	flag.BoolVar(&o.adaptive, "adaptive", false, "re-provision between steps with the adaptive planner")
	flag.DurationVar(&o.slo, "slo", 0, "response-time SLO at -slo-percentile (0 disables)")
	flag.Float64Var(&o.sloPct, "slo-percentile", 95, "percentile the SLO applies to")
	flag.StringVar(&o.percentiles, "percentiles", "95,99", "comma-separated response percentiles to evaluate")
	flag.Float64Var(&o.hysteresis, "hysteresis", 0.05, "switching hysteresis margin")
	flag.Float64Var(&o.switchEnergy, "switch-energy", 0, "joules charged per configuration switch")
	flag.IntVar(&o.workers, "workers", 0, "parallel workers for the percentile evaluation (0 = GOMAXPROCS)")
	flag.StringVar(&o.format, "format", "text", "output format: text, json or csv")
	flag.StringVar(&o.nodes, "nodes", "", "JSON file with extra node types")
	flag.StringVar(&o.workloads, "workloads", "", "JSON file with extra workload profiles")
	tel := cli.AddTelemetryFlags(nil)
	flag.Parse()

	if err := tel.Start(); err != nil {
		cli.Fatal("epreplay", err)
	}
	err := run(context.Background(), o, os.Stdout)
	if cerr := tel.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cli.Fatal("epreplay", err)
	}
}

func run(ctx context.Context, o options, w io.Writer) error {
	catalog, registry, err := cli.LoadEnvironment(o.nodes, o.workloads)
	if err != nil {
		return err
	}
	wl, err := registry.Lookup(o.workload)
	if err != nil {
		return err
	}

	var configs []cluster.Config
	switch {
	case o.budget:
		spec, err := cluster.DefaultBudget(catalog)
		if err != nil {
			return err
		}
		ladder, err := spec.Ladder()
		if err != nil {
			return err
		}
		for _, m := range ladder {
			configs = append(configs, m.Config)
		}
	case o.mixes != "":
		for _, spec := range strings.Split(o.mixes, ";") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			cfg, err := cli.ParseMix(catalog, spec, 0, 0)
			if err != nil {
				return err
			}
			configs = append(configs, cfg)
		}
	default:
		return fmt.Errorf("need a candidate set: -budget or -mixes")
	}
	var cands []*energyprop.Analysis
	for _, cfg := range configs {
		a, err := energyprop.Analyze(cfg, wl, model.Options{}, 100)
		if err != nil {
			return err
		}
		cands = append(cands, a)
	}

	tr, err := loadTrace(o)
	if err != nil {
		return err
	}

	ps, err := parsePercentiles(o.percentiles)
	if err != nil {
		return err
	}
	opt := replay.Options{
		Percentiles:   ps,
		SLO:           o.slo.Seconds(),
		SLOPercentile: o.sloPct,
		Adaptive:      o.adaptive,
		Policy:        adaptive.Policy{SLO: o.slo.Seconds(), Percentile: o.sloPct, Hysteresis: o.hysteresis},
		SwitchEnergy:  o.switchEnergy,
		Workers:       o.workers,
	}

	switch o.format {
	case "text":
		res, err := replay.Run(ctx, cands, tr, opt)
		if err != nil {
			return err
		}
		return res.Summary.Render(w)
	case "json":
		res, err := replay.Run(ctx, cands, tr, opt)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	case "csv":
		// Steps stream as CSV rows as chunks complete; the summary goes
		// to stderr so the data stays machine-readable.
		opt.DiscardSteps = true
		var emitErr error
		header := false
		opt.OnStep = func(st replay.Step) error {
			if !header {
				header = true
				cols := []string{"t", "dt", "load", "chosen", "config", "utilization", "power_watts", "energy_joules"}
				for _, p := range ps {
					cols = append(cols, fmt.Sprintf("p%g_response_s", p))
				}
				cols = append(cols, "slo_violated", "saturated", "switched")
				if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
					return err
				}
			}
			row := []string{
				formatFloat(st.T), formatFloat(st.DT), formatFloat(st.Load),
				strconv.Itoa(st.Chosen), strconv.Quote(st.Config),
				formatFloat(st.Utilization), formatFloat(st.PowerWatts), formatFloat(st.EnergyJoules),
			}
			for _, v := range st.ResponseSeconds {
				row = append(row, formatFloat(v))
			}
			row = append(row, strconv.FormatBool(st.SLOViolated),
				strconv.FormatBool(st.Saturated), strconv.FormatBool(st.Switched))
			_, emitErr = fmt.Fprintln(w, strings.Join(row, ","))
			return emitErr
		}
		res, err := replay.Run(ctx, cands, tr, opt)
		if err != nil {
			return err
		}
		return res.Summary.Render(os.Stderr)
	default:
		return fmt.Errorf("unknown format %q (want text, json or csv)", o.format)
	}
}

// loadTrace reads the trace file when given (format by extension) or
// samples the requested synthetic shape.
func loadTrace(o options) (replay.Trace, error) {
	if o.tracePath != "" {
		f, err := os.Open(o.tracePath)
		if err != nil {
			return replay.Trace{}, err
		}
		defer f.Close()
		var tr replay.Trace
		switch ext := filepath.Ext(o.tracePath); ext {
		case ".json":
			tr, err = replay.ParseJSON(f)
		case ".csv", ".txt", "":
			tr, err = replay.ParseCSV(f)
		default:
			return replay.Trace{}, fmt.Errorf("unknown trace extension %q (want .csv or .json)", ext)
		}
		if err != nil {
			return replay.Trace{}, err
		}
		if tr.Name == "" {
			tr.Name = filepath.Base(o.tracePath)
		}
		return tr, nil
	}

	var shape loadtrace.Shape
	switch o.shape {
	case "diurnal":
		shape = loadtrace.Diurnal{Mean: o.mean, Amplitude: o.amplitude, Period: 86400, PeakAt: 14 * 3600}
	case "flashcrowd":
		shape = loadtrace.FlashCrowd{Base: o.base, Peak: o.peak, Start: 9 * 3600, HalfLife: 2 * 3600}
	case "ramp":
		shape = loadtrace.Ramp{From: o.from, To: o.to, Duration: o.duration.Seconds()}
	case "steps":
		var lv []float64
		for _, s := range strings.Split(o.levels, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return replay.Trace{}, fmt.Errorf("bad level %q: %w", s, err)
			}
			lv = append(lv, v)
		}
		shape = loadtrace.Steps{Levels: lv, Dwell: o.duration.Seconds() / float64(len(lv))}
	default:
		return replay.Trace{}, fmt.Errorf("unknown shape %q (want diurnal, flashcrowd, ramp or steps)", o.shape)
	}
	if o.step <= 0 || o.duration <= 0 {
		return replay.Trace{}, fmt.Errorf("duration and step must be positive")
	}
	steps := int(o.duration.Seconds() / o.step.Seconds())
	return replay.FromShape(shape, o.step.Seconds(), steps)
}

func parsePercentiles(s string) ([]float64, error) {
	var ps []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad percentile %q: %w", part, err)
		}
		ps = append(ps, v)
	}
	if len(ps) == 0 {
		return nil, fmt.Errorf("no percentiles in %q", s)
	}
	return ps, nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
