// Command epsim runs the discrete-event cluster simulator for one
// configuration and workload, optionally comparing against the
// analytical model (a single Table 4 validation row), and can dump the
// characterization pipeline's fitted parameters.
//
// Usage:
//
//	epsim -workload EP -mix 8xA9,4xK10 [-seed 1] [-validate] [-characterize A9]
package main

import (
	"flag"
	"fmt"

	"repro/internal/characterize"
	"repro/internal/cli"
	"repro/internal/powermeter"
	"repro/internal/simulator"
)

func main() {
	wlName := flag.String("workload", "EP", "workload name")
	mix := flag.String("mix", "8xA9,4xK10", "cluster mix")
	seed := flag.Uint64("seed", 1, "simulation seed")
	validate := flag.Bool("validate", false, "compare against the analytical model")
	charNode := flag.String("characterize", "", "run the power/workload characterization for this node type and exit")
	nodes := flag.String("nodes", "", "JSON file with extra node types")
	wls := flag.String("workloads", "", "JSON file with extra workload profiles")
	flag.Parse()

	if err := run(*wlName, *mix, *seed, *validate, *charNode, *nodes, *wls); err != nil {
		cli.Fatal("epsim", err)
	}
}

func run(wlName, mix string, seed uint64, validate bool, charNode, nodesPath, wlsPath string) error {
	catalog, registry, err := cli.LoadEnvironment(nodesPath, wlsPath)
	if err != nil {
		return err
	}
	eff := simulator.DefaultEffects()
	meter := powermeter.DefaultMeter()

	if charNode != "" {
		node, err := catalog.Lookup(charNode)
		if err != nil {
			return err
		}
		opt := characterize.DefaultOptions()
		opt.Seed = seed
		pw, err := characterize.PowerParams(node, opt)
		if err != nil {
			return err
		}
		fmt.Printf("power characterization of %s (one device, fleet seed %d):\n", node.Name, eff.DeviceSeed)
		fmt.Printf("  idle        %v (nominal %v)\n", pw.Params.Idle, node.Power.Idle)
		fmt.Printf("  act/core    %v (nominal %v)\n", pw.Params.CPUActPerCore, node.Power.CPUActPerCore)
		fmt.Printf("  stall/core  %v (nominal %v)\n", pw.Params.CPUStallPerCore, node.Power.CPUStallPerCore)
		fmt.Printf("  mem (spec)  %v\n", pw.Params.Mem)
		fmt.Printf("  net         %v (nominal %v)\n", pw.Params.Net, node.Power.Net)
		wl, err := registry.Lookup(wlName)
		if err != nil {
			return err
		}
		dm, err := characterize.Demands(node, wl, pw.Params, opt)
		if err != nil {
			return err
		}
		fmt.Printf("workload characterization of %s on %s:\n", wl.Name, node.Name)
		fmt.Printf("  core cycles/unit %.4g   mem cycles/unit %.4g   IO bytes/unit %.4g   intensity %.3f\n",
			float64(dm.Demand.CoreCycles), float64(dm.Demand.MemCycles), float64(dm.Demand.IOBytes), dm.Demand.Intensity)
		return nil
	}

	cfg, err := cli.ParseMix(catalog, mix, 0, 0)
	if err != nil {
		return err
	}
	wl, err := registry.Lookup(wlName)
	if err != nil {
		return err
	}

	if validate {
		row, err := simulator.Validate(cfg, wl, eff, meter, seed)
		if err != nil {
			return err
		}
		fmt.Printf("validation of %s on %s:\n", wl.Name, cfg)
		fmt.Printf("  time:   model %v   simulated %v   error %.1f%%\n", row.ModelTime, row.SimTime, row.TimeErrPct)
		fmt.Printf("  energy: model %v   measured  %v   error %.1f%%\n", row.ModelEnergy, row.SimEnergy, row.EnergyErrPct)
		return nil
	}

	res, err := simulator.Run(cfg, wl, eff, meter, seed)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %s on %s (seed %d):\n", wl.Name, cfg, seed)
	fmt.Printf("  makespan        %v\n", res.Time)
	fmt.Printf("  true energy     %v\n", res.TrueEnergy)
	fmt.Printf("  metered energy  %v (%d samples, mean %v)\n",
		res.Measured.Energy, res.Measured.Samples, res.Measured.MeanPower)
	fmt.Printf("  events executed %d across %d nodes\n", res.Events, len(res.Nodes))
	for _, nt := range cfg.Groups {
		c := res.Counters(nt.Type.Name)
		fmt.Printf("  perf[%s]: %s\n", nt.Type.Name, c)
	}
	return nil
}
