// Command epserve runs the long-running evaluation service: the M/D/1
// tail-latency kernel, the energy-proportionality metrics and the
// energy-deadline Pareto frontier behind an HTTP API with admission
// control, load shedding, per-request deadlines, Prometheus metrics and
// graceful shutdown. See docs/API.md for the endpoint reference.
//
// Usage:
//
//	epserve -addr :8080 [-inflight 16] [-queue 64] [-timeout 10s]
//	        [-log-level debug] [-log-format json] [-slow-request 250ms]
//
// Every request is answered with an X-Request-ID header and summarized
// by one structured access-log line carrying the same ID; /metrics
// exports per-route latency histograms with request-ID exemplars and
// /v1/debug/stats a JSON RED/SLO snapshot.
//
// SIGTERM or SIGINT drains in-flight requests (readiness flips first)
// and exits 0 on a clean drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for test drivers)")
	nodes := flag.String("nodes", "", "JSON file with extra node types")
	wls := flag.String("workloads", "", "JSON file with extra workload profiles")
	inflight := flag.Int("inflight", 0, "max concurrently executing requests (0 = 2*GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max requests waiting for a slot before shedding (0 = 4*inflight, negative = no queue)")
	timeout := flag.Duration("timeout", 0, "default per-request deadline (0 = 10s)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested ?timeout= (0 = 60s)")
	workers := flag.Int("workers", 0, "sweep worker-pool width for /v1/frontier (0 = GOMAXPROCS)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
	slow := flag.Duration("slow-request", 0, "latency threshold for sampled slow-request warn logs (0 = 1s, negative disables)")
	logs := cli.AddLogFlags(nil)
	flag.Parse()

	logger, err := logs.Logger(os.Stderr)
	if err != nil {
		cli.Fatal("epserve", err)
	}
	if err := run(*addr, *addrFile, *nodes, *wls, *inflight, *queue, *timeout, *maxTimeout, *workers, *drain, *slow, logger); err != nil {
		cli.Fatal("epserve", err)
	}
}

func run(addr, addrFile, nodesPath, wlsPath string, inflight, queue int, timeout, maxTimeout time.Duration, workers int, drain, slow time.Duration, logger *slog.Logger) error {
	catalog, registry, err := cli.LoadEnvironment(nodesPath, wlsPath)
	if err != nil {
		return err
	}
	reg := telemetry.New()
	telemetry.SetGlobal(reg)

	srv, err := serve.New(serve.Config{
		Catalog:        catalog,
		Workloads:      registry,
		Telemetry:      reg,
		Logger:         logger,
		SlowRequest:    slow,
		MaxInflight:    inflight,
		MaxQueue:       queue,
		DefaultTimeout: timeout,
		MaxTimeout:     maxTimeout,
		Workers:        workers,
	})
	if err != nil {
		return err
	}

	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(addr, addrCh) }()

	select {
	case err := <-errCh:
		return err // listen failed before binding
	case bound := <-addrCh:
		logger.Info("epserve listening",
			"addr", bound.String(), "build", serve.ReadBuildInfo().String())
		if addrFile != "" {
			if err := os.WriteFile(addrFile, []byte(bound.String()), 0o644); err != nil {
				return fmt.Errorf("writing -addr-file: %w", err)
			}
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err // server died on its own
	case sig := <-sigCh:
		logger.Info("epserve draining", "signal", sig.String(), "grace", drain.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	if err := <-errCh; err != nil {
		return err
	}
	logger.Info("epserve drained cleanly")
	return nil
}
