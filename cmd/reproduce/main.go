// Command reproduce regenerates every table and figure of the paper's
// evaluation into an output directory: Tables 4, 6, 7 and 8 as aligned
// text tables, Figures 2 and 5-12 as gnuplot-style .dat series plus CSV,
// and a summary of the Pareto-frontier / sub-linearity findings.
//
// Usage:
//
//	reproduce [-out results] [-seed 1] [-only t4,f9,...]
//	          [-progress 1000] [-metrics m.json] [-trace t.trace.json] [-pprof addr]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "results", "output directory")
	seed := flag.Uint64("seed", 1, "seed for the simulated validation runs")
	only := flag.String("only", "", "comma-separated experiment ids to run (t4,t6,t7,t8,f2,f5,f6,f7,f8,f9,f10,f11,f12,ext,summary); empty runs all")
	progress := flag.Int("progress", 0, "print sweep progress to stderr every N evaluated configurations (0 disables)")
	tel := cli.AddTelemetryFlags(nil)
	flag.Parse()

	if err := tel.Start(); err != nil {
		cli.Fatal("reproduce", err)
	}
	err := run(*out, *seed, *only, *progress)
	if cerr := tel.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cli.Fatal("reproduce", err)
	}
}

func run(outDir string, seed uint64, only string, progressEvery int) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	selected := map[string]bool{}
	for _, id := range strings.Split(only, ",") {
		id = strings.TrimSpace(strings.ToLower(id))
		if id != "" {
			selected[id] = true
		}
	}
	known := map[string]bool{}
	for _, id := range []string{"t4", "t6", "t7", "t8", "f2", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12", "ext", "summary"} {
		known[id] = true
	}
	for id := range selected {
		if !known[id] {
			return fmt.Errorf("unknown experiment id %q (known: t4,t6,t7,t8,f2,f5-f12,ext,summary)", id)
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	s, err := analysis.NewSuite()
	if err != nil {
		return err
	}
	if progressEvery > 0 {
		s.ProgressEvery = progressEvery
		s.ProgressW = os.Stderr
	}

	writeTable := func(name string, render func(*os.File) error) error {
		path := filepath.Join(outDir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := render(f); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	writeSeries := func(base, xLabel string, series []report.Series) error {
		datPath := filepath.Join(outDir, base+".dat")
		f, err := os.Create(datPath)
		if err != nil {
			return err
		}
		if err := report.WriteDAT(f, series); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		csvPath := filepath.Join(outDir, base+".csv")
		g, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer g.Close()
		if err := report.WriteCSV(g, xLabel, series); err != nil {
			return err
		}
		// An ASCII rendering so the figure can be eyeballed without
		// gnuplot; series whose values cannot be plotted (e.g. all on
		// one point) are skipped silently.
		txtPath := filepath.Join(outDir, base+".txt")
		h, err := os.Create(txtPath)
		if err != nil {
			return err
		}
		defer h.Close()
		if err := report.RenderASCII(h, series, report.PlotOptions{
			Width: 72, Height: 22, XLabel: xLabel,
		}); err != nil {
			return err
		}
		fmt.Println("wrote", datPath, ",", csvPath, "and", txtPath)
		return nil
	}

	if want("t4") {
		rows, err := s.Table4(seed)
		if err != nil {
			return err
		}
		if err := writeTable("table4_validation.txt", func(f *os.File) error {
			return analysis.RenderTable4(f, rows)
		}); err != nil {
			return err
		}
	}
	if want("t6") {
		rows, err := s.Table6()
		if err != nil {
			return err
		}
		if err := writeTable("table6_ppr.txt", func(f *os.File) error {
			return analysis.RenderTable6(f, rows)
		}); err != nil {
			return err
		}
	}
	if want("t7") {
		rows, err := s.Table7()
		if err != nil {
			return err
		}
		if err := writeTable("table7_singlenode.txt", func(f *os.File) error {
			return analysis.RenderMetricsRows(f, "Table 7: single-node energy proportionality", rows)
		}); err != nil {
			return err
		}
	}
	if want("t8") {
		rows, err := s.Table8()
		if err != nil {
			return err
		}
		if err := writeTable("table8_cluster.txt", func(f *os.File) error {
			return analysis.RenderMetricsRows(f, "Table 8: cluster-wide energy proportionality (1 kW budget)", rows)
		}); err != nil {
			return err
		}
	}
	if want("f2") {
		if err := writeSeries("fig2_metrics", "utilization_pct", analysis.Figure2()); err != nil {
			return err
		}
	}

	// The paper's Figures 5/6 show EP, x264 and blackscholes; the other
	// three workloads are emitted as well for completeness.
	fig56 := []struct {
		id, wl, suffix string
	}{
		{"f5", workload.NameEP, "ep"},
		{"f5", workload.NameX264, "x264"},
		{"f5", workload.NameBlackscholes, "blackscholes"},
		{"f5", workload.NameMemcached, "memcached"},
		{"f5", workload.NameJulius, "julius"},
		{"f5", workload.NameRSA, "rsa2048"},
	}
	for _, fc := range fig56 {
		if !want(fc.id) {
			continue
		}
		series, err := s.Figure5(fc.wl)
		if err != nil {
			return err
		}
		if err := writeSeries("fig5_"+fc.suffix, "utilization_pct", series); err != nil {
			return err
		}
	}
	for _, fc := range fig56 {
		if !want("f6") {
			continue
		}
		series, err := s.Figure6(fc.wl)
		if err != nil {
			return err
		}
		if err := writeSeries("fig6_"+fc.suffix, "utilization_pct", series); err != nil {
			return err
		}
	}
	if want("f7") {
		series, err := s.Figure7(workload.NameEP)
		if err != nil {
			return err
		}
		if err := writeSeries("fig7_cluster_ep", "utilization_pct", series); err != nil {
			return err
		}
	}
	if want("f8") {
		series, err := s.Figure8(workload.NameEP)
		if err != nil {
			return err
		}
		if err := writeSeries("fig8_cluster_ppr", "utilization_pct", series); err != nil {
			return err
		}
	}
	for _, fc := range []struct {
		id, wl, base string
	}{
		{"f9", workload.NameEP, "fig9_pareto_ep"},
		{"f10", workload.NameX264, "fig10_pareto_x264"},
	} {
		if !want(fc.id) {
			continue
		}
		fig, err := s.FigurePareto(fc.wl, 6)
		if err != nil {
			return err
		}
		if err := writeSeries(fc.base, "utilization_pct", fig.Series); err != nil {
			return err
		}
		summary := filepath.Join(outDir, fc.base+"_frontier.txt")
		f, err := os.Create(summary)
		if err != nil {
			return err
		}
		fmt.Fprintf(f, "Workload: %s\nReference: %s\nSub-linear configurations: %d of %d plotted\n\nFrontier:\n",
			fig.Workload, fig.Reference, fig.SublinearCount(), len(fig.Frontier))
		for _, line := range analysis.FrontierSummary(fig.Frontier) {
			fmt.Fprintln(f, " ", line)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", summary)
	}
	for _, fc := range []struct {
		id, wl, base string
	}{
		{"f11", workload.NameEP, "fig11_resp_ep"},
		{"f12", workload.NameX264, "fig12_resp_x264"},
	} {
		if !want(fc.id) {
			continue
		}
		series, err := s.FigureResponse(fc.wl, 95)
		if err != nil {
			return err
		}
		if err := writeSeries(fc.base, "utilization_pct", series); err != nil {
			return err
		}
	}

	// Extension studies beyond the paper's figures.
	if want("ext") {
		if err := writeExtensions(s, outDir, writeSeries); err != nil {
			return err
		}
	}

	if want("summary") {
		path := filepath.Join(outDir, "SUMMARY.txt")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := s.WriteSummary(f, seed); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	return nil
}

// writeExtensions emits the sensitivity sweep and the adaptive-ensemble
// study (see EXPERIMENTS.md, "Extensions").
func writeExtensions(s *analysis.Suite, outDir string, writeSeries func(string, string, []report.Series) error) error {
	ratios := make([]float64, 0, 16)
	for r := 0.25; r <= 4.01; r *= 1.2 {
		ratios = append(ratios, r)
	}
	rows, err := s.SensitivityPPRRatio(ratios)
	if err != nil {
		return err
	}
	xs := make([]float64, len(rows))
	inflation := make([]float64, len(rows))
	epuRatio := make([]float64, len(rows))
	saving := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.Ratio
		inflation[i] = r.TimeInflation
		epuRatio[i] = r.EnergyPerUnitRatio
		saving[i] = r.PowerSaving
	}
	if err := writeSeries("ext_sensitivity_ppr", "wimpy_to_brawny_ppr_ratio", []report.Series{
		{Label: "time-inflation (25A9:5K10 / 32A9:12K10)", X: xs, Y: inflation},
		{Label: "energy-per-unit ratio", X: xs, Y: epuRatio},
		{Label: "power saving at 50% util", X: xs, Y: saving},
	}); err != nil {
		return err
	}

	full, err := s.FullSpaceFrontier(workload.NameEP, 32, 12)
	if err != nil {
		return err
	}
	path := filepath.Join(outDir, "ext_fullspace_frontier.txt")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(f, "Full-space Pareto frontier for %s over %d configurations\n", full.Workload, full.SpaceSize)
	fmt.Fprintf(f, "%d frontier points, %d with throttled cores/frequency\n\n", len(full.Frontier), full.ThrottledPoints)
	for _, line := range analysis.FrontierSummary(full.Frontier) {
		fmt.Fprintln(f, " ", line)
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}
