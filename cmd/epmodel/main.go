// Command epmodel evaluates the time-energy model for one configuration
// and workload, printing the Table 2 breakdown.
//
// Usage:
//
//	epmodel -workload EP -mix 32xA9,12xK10 [-cores 0] [-freq 0]
//	epmodel -list
//
// The -mix flag is a comma-separated list of COUNTxTYPE entries. -cores
// and -freq (GHz) override active cores and core frequency for every
// group; zero keeps the per-type maximum.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cli"
	"repro/internal/model"
)

func main() {
	wlName := flag.String("workload", "EP", "workload name")
	mix := flag.String("mix", "32xA9,12xK10", "cluster mix, e.g. 32xA9,12xK10")
	cores := flag.Int("cores", 0, "active cores per node (0 = all)")
	freqGHz := flag.Float64("freq", 0, "core frequency in GHz (0 = max; snapped to the node's ladder)")
	list := flag.Bool("list", false, "list available node types and workloads")
	nodes := flag.String("nodes", "", "JSON file with extra node types")
	wls := flag.String("workloads", "", "JSON file with extra workload profiles")
	flag.Parse()

	if err := run(*wlName, *mix, *cores, *freqGHz, *list, *nodes, *wls); err != nil {
		cli.Fatal("epmodel", err)
	}
}

func run(wlName, mix string, cores int, freqGHz float64, list bool, nodesPath, wlsPath string) error {
	catalog, registry, err := cli.LoadEnvironment(nodesPath, wlsPath)
	if err != nil {
		return err
	}
	if list {
		fmt.Println("node types:")
		for _, n := range catalog.Names() {
			nt, err := catalog.Lookup(n)
			if err != nil {
				return err
			}
			fmt.Println(" ", nt)
		}
		fmt.Println("workloads:")
		for _, w := range registry.Names() {
			p, err := registry.Lookup(w)
			if err != nil {
				return err
			}
			fmt.Println(" ", p)
		}
		return nil
	}

	cfg, err := cli.ParseMix(catalog, mix, cores, freqGHz)
	if err != nil {
		return err
	}
	wl, err := registry.Lookup(wlName)
	if err != nil {
		return err
	}
	res, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		return err
	}

	fmt.Printf("configuration: %s\n", cfg)
	fmt.Printf("workload:      %s (%g %s per job)\n", wl.Name, wl.JobUnits, wl.Unit)
	fmt.Printf("time  T_P:     %v\n", res.Time)
	fmt.Printf("energy E_P:    %v\n", res.Energy)
	fmt.Printf("idle power:    %v\n", res.IdlePower)
	fmt.Printf("busy power:    %v (peak for this workload)\n", res.BusyPower)
	fmt.Printf("throughput:    %v %s/s\n", float64(res.Throughput), wl.Unit)
	fmt.Printf("PPR:           %.6g (%s/s)/W\n", res.PPR(), wl.Unit)
	fmt.Println("\nper node type:")
	for _, g := range res.Groups {
		fmt.Printf("  %-28s units=%.4g/node  T_core=%v T_mem=%v T_IO=%v  busy=%v\n",
			g.Group.Type.Name+fmt.Sprintf(" x%d (%dc@%v)", g.Group.Count, g.Group.Cores, g.Group.Freq),
			g.UnitsPerNode, g.TCore, g.TMem, g.TIO, g.BusyPower)
	}
	return nil
}
