// Command eptrace plays a synthetic datacenter load trace against a set
// of cluster configurations, comparing a static deployment with dynamic
// configuration switching (see internal/loadtrace and the paper's
// Section I note that dynamic adaptation complements its static
// analysis).
//
// Usage:
//
//	eptrace -workload EP -mixes "32xA9,12xK10;25xA9,8xK10;25xA9,5xK10"
//	        -shape diurnal -mean 0.3 -amplitude 0.25 [-slo 200ms]
//	        [-duration 24h] [-step 15m] [-hysteresis 0.05]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/adaptive"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/loadtrace"
	"repro/internal/model"
)

func main() {
	wlName := flag.String("workload", "EP", "workload name")
	mixes := flag.String("mixes", "32xA9,12xK10;25xA9,8xK10;25xA9,5xK10", "semicolon-separated candidate mixes; the fastest is the static reference")
	frontierN := flag.Int("frontier-candidates", 0, "derive N candidates from the Pareto frontier of the -maxA9/-maxK10 space instead of -mixes (0 disables)")
	maxA9 := flag.Int("maxA9", 32, "maximum wimpy nodes for -frontier-candidates")
	maxK10 := flag.Int("maxK10", 12, "maximum brawny nodes for -frontier-candidates")
	dvfs := flag.Bool("dvfs", false, "let -frontier-candidates explore reduced cores and frequencies")
	shapeName := flag.String("shape", "diurnal", "load shape: diurnal, flashcrowd or steps")
	mean := flag.Float64("mean", 0.3, "diurnal mean load fraction")
	amplitude := flag.Float64("amplitude", 0.25, "diurnal amplitude")
	base := flag.Float64("base", 0.2, "flashcrowd base load")
	peak := flag.Float64("peak", 0.9, "flashcrowd peak load")
	levels := flag.String("levels", "0.15,0.55,0.85,0.45", "steps: comma-separated load levels")
	duration := flag.Duration("duration", 24*time.Hour, "trace duration")
	step := flag.Duration("step", 15*time.Minute, "reconfiguration epoch")
	slo := flag.Duration("slo", 0, "p95 response SLO (0 disables)")
	hysteresis := flag.Float64("hysteresis", 0.05, "switching hysteresis margin")
	showPlan := flag.Bool("plan", false, "print the per-load configuration plan table")
	nodes := flag.String("nodes", "", "JSON file with extra node types")
	wls := flag.String("workloads", "", "JSON file with extra workload profiles")
	workers := flag.Int("workers", 0, "parallel workers for the -frontier-candidates sweep (0 = GOMAXPROCS)")
	tel := cli.AddTelemetryFlags(nil)
	flag.Parse()

	if err := tel.Start(); err != nil {
		cli.Fatal("eptrace", err)
	}
	err := run(*wlName, *mixes, *shapeName, *mean, *amplitude, *base, *peak, *levels,
		*duration, *step, *slo, *hysteresis, *showPlan, *frontierN, *maxA9, *maxK10, *dvfs, *nodes, *wls, *workers)
	if cerr := tel.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		cli.Fatal("eptrace", err)
	}
}

func run(wlName, mixes, shapeName string, mean, amplitude, base, peak float64, levels string,
	duration, step, slo time.Duration, hysteresis float64, showPlan bool,
	frontierN, maxA9, maxK10 int, dvfs bool, nodesPath, wlsPath string, workers int) error {
	catalog, registry, err := cli.LoadEnvironment(nodesPath, wlsPath)
	if err != nil {
		return err
	}
	wl, err := registry.Lookup(wlName)
	if err != nil {
		return err
	}

	var cands []*energyprop.Analysis
	if frontierN > 0 {
		// Candidate matrix from the design space itself: sweep the
		// frontier with the memoized engine and thin it to N mixes.
		a9, err := catalog.Lookup("A9")
		if err != nil {
			return err
		}
		k10, err := catalog.Lookup("K10")
		if err != nil {
			return err
		}
		limits := []cluster.Limit{
			{Type: a9, MaxNodes: maxA9, FixCoresAndFreq: !dvfs},
			{Type: k10, MaxNodes: maxK10, FixCoresAndFreq: !dvfs},
		}
		cands, err = adaptive.FrontierCandidates(limits, wl, model.Options{}, frontierN, 100, workers)
		if err != nil {
			return err
		}
		fmt.Printf("frontier candidates over %d configurations:\n", cluster.SpaceSize(limits))
		for _, c := range cands {
			fmt.Printf("  %-22s T=%v E=%v\n", c.Result.Config, c.Result.Time, c.Result.Energy)
		}
		fmt.Println()
	} else {
		for _, spec := range strings.Split(mixes, ";") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			cfg, err := cli.ParseMix(catalog, spec, 0, 0)
			if err != nil {
				return err
			}
			a, err := energyprop.Analyze(cfg, wl, model.Options{}, 100)
			if err != nil {
				return err
			}
			cands = append(cands, a)
		}
	}
	if len(cands) < 2 {
		return fmt.Errorf("need at least two candidate mixes, got %d", len(cands))
	}

	var shape loadtrace.Shape
	switch shapeName {
	case "diurnal":
		shape = loadtrace.Diurnal{Mean: mean, Amplitude: amplitude, Period: 86400, PeakAt: 14 * 3600}
	case "flashcrowd":
		shape = loadtrace.FlashCrowd{Base: base, Peak: peak, Start: 9 * 3600, HalfLife: 2 * 3600}
	case "steps":
		var lv []float64
		for _, s := range strings.Split(levels, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &v); err != nil {
				return fmt.Errorf("bad level %q: %w", s, err)
			}
			lv = append(lv, v)
		}
		shape = loadtrace.Steps{Levels: lv, Dwell: duration.Seconds() / float64(len(lv))}
	default:
		return fmt.Errorf("unknown shape %q", shapeName)
	}

	static, adapted, err := loadtrace.Evaluate(cands, shape, loadtrace.TraceOptions{
		Duration: duration.Seconds(),
		Step:     step.Seconds(),
		Policy: adaptive.Policy{
			SLO:        slo.Seconds(),
			Hysteresis: hysteresis,
		},
	})
	if err != nil {
		return err
	}

	fmt.Printf("workload %s, shape %s, %v trace with %v epochs\n\n", wl.Name, shape.Name(), duration, step)
	for _, r := range []loadtrace.Result{static, adapted} {
		fmt.Printf("%-40s %10.2f kWh  mean %7.1f W", r.Strategy, r.Energy/3.6e6, r.MeanPower)
		if r.Switches > 0 || strings.HasPrefix(r.Strategy, "adaptive") {
			fmt.Printf("  switches=%d violations=%d", r.Switches, r.SLOViolations)
		}
		fmt.Println()
	}
	fmt.Printf("\nenergy saving from adaptation: %.1f%% (mean load %.1f%%)\n",
		100*loadtrace.Saving(static, adapted), 100*static.MeanLoad)

	if showPlan {
		grid := make([]float64, 0, 19)
		for u := 0.05; u <= 0.95; u += 0.05 {
			grid = append(grid, u)
		}
		plan, err := adaptive.Plan(cands, adaptive.Policy{SLO: slo.Seconds(), Hysteresis: hysteresis}, grid)
		if err != nil {
			return err
		}
		fmt.Println()
		if err := plan.RenderTable(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}
