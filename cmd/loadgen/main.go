// Command loadgen drives HTTP load against a running epserve instance
// and prints status-code counts and latency percentiles. The default is
// a closed loop (workers issue requests back-to-back); -rate switches
// to an open loop with fixed arrivals per second and
// coordinated-omission-safe latency (measured from each request's
// scheduled arrival), printing the achieved versus offered rate. With
// -fail-on-5xx it exits non-zero if any request drew a 5xx — the
// `make serve-smoke` gate. -body turns every target into a POST with
// that JSON body, for driving the batch endpoints; per-item batch
// errors are reported separately from non-2xx responses and transport
// errors.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -duration 5s -concurrency 16 -fail-on-5xx
//	loadgen -url http://127.0.0.1:8080 -rate 500 -paths /v1/percentiles?d=1&u=0.9
//	loadgen -url http://127.0.0.1:8080 -rate 50 -paths /v1/percentiles \
//	        -body '{"u":[0.5,0.9],"items":[{"d":1}]}'
package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/serve/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "epserve base URL")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 16, "worker count (max in-flight in open-loop mode)")
	rate := flag.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
	paths := flag.String("paths", "", "comma-separated request paths (empty = built-in mix)")
	body := flag.String("body", "", "JSON body: every target becomes a POST carrying it (batch endpoints)")
	failOn5xx := flag.Bool("fail-on-5xx", false, "exit non-zero if any request drew a 5xx response")
	maxP99 := flag.Duration("max-p99", 0, "exit non-zero if client-side p99 latency exceeds this (0 = no bound)")
	serverStats := flag.Bool("server-stats", true, "fetch /v1/debug/stats after the run and print the server-side per-route view")
	flag.Parse()

	if err := run(*url, *duration, *concurrency, *rate, *paths, *body, *failOn5xx, *serverStats, *maxP99); err != nil {
		cli.Fatal("loadgen", err)
	}
}

func run(url string, duration time.Duration, concurrency int, rate float64, rawPaths, body string, failOn5xx, serverStats bool, maxP99 time.Duration) error {
	cfg := loadgen.Config{
		BaseURL:     strings.TrimRight(url, "/"),
		Concurrency: concurrency,
		Duration:    duration,
		Rate:        rate,
	}
	if rawPaths != "" {
		cfg.Paths = strings.Split(rawPaths, ",")
	}
	if body != "" {
		paths := cfg.Paths
		if len(paths) == 0 {
			paths = []string{"/v1/percentiles"}
		}
		cfg.Targets = make([]loadgen.Target, len(paths))
		for i, p := range paths {
			cfg.Targets[i] = loadgen.Target{Path: p, Body: []byte(body)}
		}
	}
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Println(res)
	if serverStats {
		// Best-effort: an epserve predating /v1/debug/stats answers 404,
		// which must not fail the run the client-side numbers cover.
		if stats, err := loadgen.ServerStats(context.Background(), nil, cfg.BaseURL); err != nil {
			fmt.Println("server    stats unavailable:", err)
		} else {
			fmt.Println(loadgen.FormatServerStats(stats))
		}
	}
	if failOn5xx {
		if n := res.Count5xx(); n > 0 {
			return fmt.Errorf("%d requests drew a 5xx response", n)
		}
		if res.TransportErrors > 0 {
			return fmt.Errorf("%d requests failed at the transport layer", res.TransportErrors)
		}
	}
	if maxP99 > 0 {
		if p99 := res.Latency(99); p99 > maxP99 {
			return fmt.Errorf("p99 latency %v exceeds bound %v", p99, maxP99)
		}
	}
	return nil
}
