// Command loadgen drives closed-loop HTTP load against a running
// epserve instance and prints status-code counts and latency
// percentiles. With -fail-on-5xx it exits non-zero if any request drew
// a 5xx — the `make serve-smoke` gate.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -duration 5s -concurrency 16 -fail-on-5xx
package main

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/serve/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "epserve base URL")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 16, "closed-loop worker count")
	paths := flag.String("paths", "", "comma-separated request paths (empty = built-in mix)")
	failOn5xx := flag.Bool("fail-on-5xx", false, "exit non-zero if any request drew a 5xx response")
	maxP99 := flag.Duration("max-p99", 0, "exit non-zero if client-side p99 latency exceeds this (0 = no bound)")
	serverStats := flag.Bool("server-stats", true, "fetch /v1/debug/stats after the run and print the server-side per-route view")
	flag.Parse()

	if err := run(*url, *duration, *concurrency, *paths, *failOn5xx, *serverStats, *maxP99); err != nil {
		cli.Fatal("loadgen", err)
	}
}

func run(url string, duration time.Duration, concurrency int, rawPaths string, failOn5xx, serverStats bool, maxP99 time.Duration) error {
	cfg := loadgen.Config{
		BaseURL:     strings.TrimRight(url, "/"),
		Concurrency: concurrency,
		Duration:    duration,
	}
	if rawPaths != "" {
		cfg.Paths = strings.Split(rawPaths, ",")
	}
	res, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	fmt.Println(res)
	if serverStats {
		// Best-effort: an epserve predating /v1/debug/stats answers 404,
		// which must not fail the run the client-side numbers cover.
		if stats, err := loadgen.ServerStats(context.Background(), nil, cfg.BaseURL); err != nil {
			fmt.Println("server    stats unavailable:", err)
		} else {
			fmt.Println(loadgen.FormatServerStats(stats))
		}
	}
	if failOn5xx {
		if n := res.Count5xx(); n > 0 {
			return fmt.Errorf("%d requests drew a 5xx response", n)
		}
		if res.TransportErrors > 0 {
			return fmt.Errorf("%d requests failed at the transport layer", res.TransportErrors)
		}
	}
	if maxP99 > 0 {
		if p99 := res.Latency(99); p99 > maxP99 {
			return fmt.Errorf("p99 latency %v exceeds bound %v", p99, maxP99)
		}
	}
	return nil
}
