package repro_test

// Extension benchmarks: experiments beyond the paper's evaluation that
// exercise the optional/future-work directions it names — dynamic
// adaptation (Section I), the full DVFS configuration space (footnote 4
// enumerates it but the figures only vary node counts), and a
// sensitivity generalization of the Section III-E PPR asymmetry.

import (
	"testing"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/cluster"
	"repro/internal/colocate"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/loadtrace"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/simulator"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// BenchmarkExtensionAdaptiveEnsemble plans the load-dependent
// configuration ensemble over the Figure-9 mixes and reports its mean
// power saving and proportionality gain over the static reference.
func BenchmarkExtensionAdaptiveEnsemble(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	var cands []*energyprop.Analysis
	for _, m := range [][2]int{{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}} {
		cfg, err := mix(s, m[0], m[1])
		if err != nil {
			b.Fatal(err)
		}
		a, err := energyprop.Analyze(cfg, wl, model.Options{}, 100)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, a)
	}
	grid := stats.Linspace(0.05, 0.9, 18)
	var savings, epmGain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := adaptive.Plan(cands, adaptive.Policy{}, grid)
		if err != nil {
			b.Fatal(err)
		}
		m, err := plan.Metrics()
		if err != nil {
			b.Fatal(err)
		}
		savings = plan.Savings()
		epmGain = m.EPM - cands[0].Metrics().EPM
	}
	b.ReportMetric(100*savings, "power-saving-%")
	b.ReportMetric(epmGain, "EPM-gain")
}

// BenchmarkExtensionSensitivityPPR sweeps the wimpy-to-brawny PPR ratio
// and reports the crossover ratio where the sub-linear mix stops being
// more energy efficient per unit of work.
func BenchmarkExtensionSensitivityPPR(b *testing.B) {
	s := newSuite(b)
	ratios := stats.Linspace(0.25, 4, 16)
	var crossover float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.SensitivityPPRRatio(ratios)
		if err != nil {
			b.Fatal(err)
		}
		crossover = 0
		for j := 1; j < len(rows); j++ {
			if rows[j-1].EnergyPerUnitRatio >= 1 && rows[j].EnergyPerUnitRatio < 1 {
				// Linear interpolation between grid points.
				a, bb := rows[j-1], rows[j]
				frac := (a.EnergyPerUnitRatio - 1) / (a.EnergyPerUnitRatio - bb.EnergyPerUnitRatio)
				crossover = a.Ratio + frac*(bb.Ratio-a.Ratio)
				break
			}
		}
	}
	b.ReportMetric(crossover, "efficiency-crossover-ratio")
}

// BenchmarkExtensionFullSpacePareto computes the Pareto frontier over
// the complete 32 A9 x 12 K10 space with all core and DVFS choices
// (~139k configurations) and reports how many frontier points throttle
// cores or frequency.
func BenchmarkExtensionFullSpacePareto(b *testing.B) {
	s := newSuite(b)
	var size, frontier, throttled int
	for i := 0; i < b.N; i++ {
		res, err := s.FullSpaceFrontier(workload.NameEP, 32, 12)
		if err != nil {
			b.Fatal(err)
		}
		size = res.SpaceSize
		frontier = len(res.Frontier)
		throttled = res.ThrottledPoints
	}
	b.ReportMetric(float64(size), "configs")
	b.ReportMetric(float64(frontier), "frontier-points")
	b.ReportMetric(float64(throttled), "throttled-points")
}

// BenchmarkAblationServiceJitter quantifies the deterministic-service
// assumption of the paper's M/D/1 analysis: it compares the exact
// percentile against a G/G/1 simulation whose service times come from
// the cluster simulator with all jitter sources active.
func BenchmarkAblationServiceJitter(b *testing.B) {
	s := newSuite(b)
	var errPct, cv float64
	for i := 0; i < b.N; i++ {
		rv, err := s.ValidateResponseModel(workload.NameEP, 8, 4, 0.6, 64, 200000, uint64(i+11))
		if err != nil {
			b.Fatal(err)
		}
		errPct, cv = rv.ErrPct, rv.ServiceCV
	}
	b.ReportMetric(errPct, "p95-model-err-%")
	b.ReportMetric(100*cv, "service-CV-%")
}

// BenchmarkCrommelinPrecisionScaling measures the exact M/D/1 CDF cost
// across utilizations (the adaptive precision grows with lambda*t).
func BenchmarkCrommelinPrecisionScaling(b *testing.B) {
	for _, rho := range []float64{0.5, 0.8, 0.95} {
		rho := rho
		b.Run(benchName(rho), func(b *testing.B) {
			q := repro.MD1{Lambda: rho, D: 1}
			for i := 0; i < b.N; i++ {
				if _, err := q.ResponsePercentile(99); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(rho float64) string {
	switch rho {
	case 0.5:
		return "rho-0.5"
	case 0.8:
		return "rho-0.8"
	default:
		return "rho-0.95"
	}
}

// BenchmarkAblationBatchArrivals quantifies the paper's batch submission
// pattern (Section II-C varies "jobs per batch"): at equal utilization,
// batching inflates the p95 response relative to single-job arrivals.
func BenchmarkAblationBatchArrivals(b *testing.B) {
	var inflate float64
	for i := 0; i < b.N; i++ {
		single := queueing.MD1{Lambda: 0.6, D: 1}
		p95single, err := single.ResponsePercentile(95)
		if err != nil {
			b.Fatal(err)
		}
		batched, err := queueing.NewBatchMD1FromUtilization(0.6, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		p95batch, err := batched.ResponsePercentile(95, queueing.SimOptions{
			Jobs: 200000, Warmup: 4000, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		inflate = p95batch / p95single
	}
	b.ReportMetric(inflate, "p95-inflation-B8-vs-B1")
}

// BenchmarkAblationStraggler quantifies how a single slow node breaks
// the static rate-matched mapping: makespan inflation with one 3x
// straggler among the validation cluster's 12 nodes.
func BenchmarkAblationStraggler(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := mix(s, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	clean := s.Effects
	clean.StragglerProb = 0
	slow := clean
	slow.StragglerProb = 0.999 // at least one straggler, deterministic enough
	slow.StragglerSlowdown = 3
	var inflation float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := simulator.Run(cfg, wl, clean, s.Meter, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		broken, err := simulator.Run(cfg, wl, slow, s.Meter, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		inflation = float64(broken.Time) / float64(base.Time)
	}
	b.ReportMetric(inflation, "makespan-inflation-x")
}

// BenchmarkExtensionDiurnalTrace plays a 24-hour diurnal load trace
// (mean 30%, the over-provisioning operating point the paper cites)
// against static and adaptive deployments, reporting the energy saving.
func BenchmarkExtensionDiurnalTrace(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	var cands []*energyprop.Analysis
	for _, m := range [][2]int{{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}} {
		cfg, err := mix(s, m[0], m[1])
		if err != nil {
			b.Fatal(err)
		}
		a, err := energyprop.Analyze(cfg, wl, model.Options{}, 100)
		if err != nil {
			b.Fatal(err)
		}
		cands = append(cands, a)
	}
	shape := loadtrace.Diurnal{Mean: 0.30, Amplitude: 0.25, Period: 86400, PeakAt: 14 * 3600}
	var saving float64
	var switches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		static, adapted, err := loadtrace.Evaluate(cands, shape, loadtrace.TraceOptions{
			Duration: 86400,
			Step:     900,
			Policy:   adaptive.Policy{Hysteresis: 0.05},
		})
		if err != nil {
			b.Fatal(err)
		}
		saving = loadtrace.Saving(static, adapted)
		switches = adapted.Switches
	}
	b.ReportMetric(100*saving, "energy-saving-%")
	b.ReportMetric(float64(switches), "switches-per-day")
}

// BenchmarkExtensionDegreeOfHeterogeneity evaluates 1-, 2- and 3-type
// configuration spaces (the paper's d_max never exceeds 2) and reports
// how the sub-linear frontier grows with the degree.
func BenchmarkExtensionDegreeOfHeterogeneity(b *testing.B) {
	s := newSuite(b)
	var rows []analysisDegreeRow
	for i := 0; i < b.N; i++ {
		r, err := s.DegreeStudy(8, 42)
		if err != nil {
			b.Fatal(err)
		}
		rows = make([]analysisDegreeRow, len(r))
		for j, v := range r {
			rows[j] = analysisDegreeRow{sublinear: v.Sublinear, frontier: v.FrontierSize}
		}
	}
	if len(rows) == 3 {
		b.ReportMetric(float64(rows[1].sublinear), "sublinear-d2")
		b.ReportMetric(float64(rows[2].sublinear), "sublinear-d3")
	}
}

type analysisDegreeRow struct{ sublinear, frontier int }

// BenchmarkExtensionColocation partitions a 16 A9 + 8 K10 pool between
// EP (wimpy-favoring) and x264 (brawny-favoring) and reports the energy
// gain of the optimal affinity partition over a proportional split.
func BenchmarkExtensionColocation(b *testing.B) {
	s := newSuite(b)
	ep, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	x264, err := s.Registry.Lookup(workload.NameX264)
	if err != nil {
		b.Fatal(err)
	}
	a9, _ := s.Catalog.Lookup("A9")
	k10, _ := s.Catalog.Lookup("K10")
	pool := colocate.Pool{Types: []*hardware.NodeType{a9, k10}, Counts: []int{16, 8}}
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, prop, err := pool.Best(ep, x264, 0, 0, model.Options{})
		if err != nil {
			b.Fatal(err)
		}
		gain = colocate.AffinityGain(best, prop)
	}
	b.ReportMetric(100*gain, "affinity-gain-%")
}

// BenchmarkAblationUplinkContention quantifies the model's uncontended-
// I/O assumption: an oversubscribed switch uplink slows the I/O-bound
// memcached and inflates the validation error the paper would have seen
// on a cheaper network.
func BenchmarkAblationUplinkContention(b *testing.B) {
	s := newSuite(b)
	mc, err := s.Registry.Lookup(workload.NameMemcached)
	if err != nil {
		b.Fatal(err)
	}
	a9, err := s.Catalog.Lookup("A9")
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := cluster.NewConfig(cluster.FullNodes(a9, 16))
	if err != nil {
		b.Fatal(err)
	}
	congested := s.Effects
	congested.UplinkBandwidth = units.BytesPerSecond(50e6) // 2x oversubscribed
	congested.NodesPerUplink = 8
	var baseErr, congErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base, err := simulator.Validate(cfg, mc, s.Effects, s.Meter, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		cong, err := simulator.Validate(cfg, mc, congested, s.Meter, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		baseErr, congErr = base.TimeErrPct, cong.TimeErrPct
	}
	b.ReportMetric(baseErr, "time-err-%-clean")
	b.ReportMetric(congErr, "time-err-%-congested")
}

// BenchmarkValidationPowerCurve validates the Section II-B utilization
// model empirically: it replays Poisson arrivals through the end-to-end
// window simulation at several utilizations and reports the worst
// deviation of the measured mean power from the linear P(U) model — the
// measured counterpart of Figures 5 and 7.
func BenchmarkValidationPowerCurve(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := mix(s, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	mres, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var worst float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, u := range []float64{0.25, 0.5, 0.75} {
			res, err := simulator.RunWindow(cfg, wl, s.Effects, s.Meter, simulator.WindowOptions{
				ArrivalRate:    units.PerSecond(u / float64(mres.Time)),
				Window:         units.Seconds(8000 * float64(mres.Time)),
				ServiceSamples: 32,
				Seed:           uint64(i*31 + 7),
			})
			if err != nil {
				b.Fatal(err)
			}
			want := float64(mres.IdlePower) + res.BusyFraction*float64(mres.BusyPower-mres.IdlePower)
			dev := stats.RelErr(float64(res.MeanPower), want)
			if dev > worst {
				worst = dev
			}
		}
	}
	b.ReportMetric(100*worst, "max-power-dev-%")
}

// BenchmarkEnumerationThroughput measures raw configuration enumeration
// speed over the full footnote-4 space.
func BenchmarkEnumerationThroughput(b *testing.B) {
	s := newSuite(b)
	arm, err := s.Catalog.Lookup("A9")
	if err != nil {
		b.Fatal(err)
	}
	amd, err := s.Catalog.Lookup("K10")
	if err != nil {
		b.Fatal(err)
	}
	limits := []cluster.Limit{
		{Type: arm, MaxNodes: 10},
		{Type: amd, MaxNodes: 10},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := cluster.Enumerate(limits, func(cluster.Config) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != 36380 {
			b.Fatalf("enumerated %d", n)
		}
	}
}
