# Gnuplot recipes for the reproduced figures. Run from the results
# directory after `go run ./cmd/reproduce -out results`:
#
#   gnuplot -persist plot.gp            # all figures to PNG files
#
# Each .dat file uses gnuplot's index format: one block per series,
# labelled by the leading comment.

set terminal pngcairo size 800,560 font ",11"
set key bottom right
set grid

set output "fig5_ep.png"
set title "Figure 5a: energy proportionality, EP"
set xlabel "Utilization [%]"
set ylabel "Peak power [%]"
plot for [i=0:2] "fig5_ep.dat" index i using 1:2 with linespoints title columnheader(1)

set output "fig7_cluster_ep.png"
set title "Figure 7: cluster-wide energy proportionality of EP"
plot for [i=0:5] "fig7_cluster_ep.dat" index i using 1:2 with linespoints title columnheader(1)

set output "fig8_cluster_ppr.png"
set title "Figure 8: cluster-wide PPR of EP"
set ylabel "PPR [ops/W]"
plot for [i=0:4] "fig8_cluster_ppr.dat" index i using 1:2 with linespoints title columnheader(1)

set output "fig9_pareto_ep.png"
set title "Figure 9: Pareto configurations of EP vs reference ideal"
set ylabel "Peak power [% of reference]"
plot for [i=0:6] "fig9_pareto_ep.dat" index i using 1:2 with linespoints title columnheader(1)

set output "fig11_resp_ep.png"
set title "Figure 11: p95 response time, EP"
set ylabel "95th percentile response time [s]"
set logscale y
plot for [i=0:4] "fig11_resp_ep.dat" index i using 1:2 with linespoints title columnheader(1)

set output "fig12_resp_x264.png"
set title "Figure 12: p95 response time, x264"
plot for [i=0:4] "fig12_resp_x264.dat" index i using 1:2 with linespoints title columnheader(1)
unset logscale y
