package repro_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section (see DESIGN.md's experiment index) and
// reports headline quantities as custom benchmark metrics, so a plain
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. The ablation benches quantify the
// design choices DESIGN.md calls out: the rate-matched work split, the
// exact M/D/1 percentiles versus Monte-Carlo, switch power in the budget
// substitution, and the DVFS power-scaling exponent.

import (
	"testing"

	"repro"
	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/units"
	"repro/internal/workload"
)

func newSuite(b *testing.B) *repro.Suite {
	b.Helper()
	s, err := repro.NewSuite()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable4Validation regenerates Table 4: model-versus-measured
// time and energy errors across the six workloads. Reports the maximum
// errors observed.
func BenchmarkTable4Validation(b *testing.B) {
	s := newSuite(b)
	var maxTime, maxEnergy float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		maxTime, maxEnergy = 0, 0
		for _, r := range rows {
			if r.TimeErrPct > maxTime {
				maxTime = r.TimeErrPct
			}
			if r.EnergyErrPct > maxEnergy {
				maxEnergy = r.EnergyErrPct
			}
		}
	}
	b.ReportMetric(maxTime, "max-time-err-%")
	b.ReportMetric(maxEnergy, "max-energy-err-%")
}

// BenchmarkTable6PPR regenerates Table 6 and reports the worst relative
// deviation from the published PPR values.
func BenchmarkTable6PPR(b *testing.B) {
	s := newSuite(b)
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := s.Table6()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			for _, pair := range [][2]float64{{r.A9, r.PaperA9}, {r.K10, r.PaperK10}} {
				d := pair[0]/pair[1] - 1
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
	}
	b.ReportMetric(100*worst, "max-ppr-dev-%")
}

// BenchmarkTable7SingleNode regenerates Table 7's single-node metrics.
func BenchmarkTable7SingleNode(b *testing.B) {
	s := newSuite(b)
	var rows []analysis.MetricsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable8Cluster regenerates Table 8's cluster-wide metrics for
// the 1 kW substitution ladder.
func BenchmarkTable8Cluster(b *testing.B) {
	s := newSuite(b)
	var rows []analysis.MetricsRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Table8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkFigure2Metrics regenerates the conceptual metric curves.
func BenchmarkFigure2Metrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if series := analysis.Figure2(); len(series) != 3 {
			b.Fatal("figure 2 malformed")
		}
	}
}

// BenchmarkFigure5NodeProportionality regenerates Figures 5a-5c.
func BenchmarkFigure5NodeProportionality(b *testing.B) {
	s := newSuite(b)
	for i := 0; i < b.N; i++ {
		for _, wl := range []string{workload.NameEP, workload.NameX264, workload.NameBlackscholes} {
			if _, err := s.Figure5(wl); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure6NodePPR regenerates Figures 6a-6c.
func BenchmarkFigure6NodePPR(b *testing.B) {
	s := newSuite(b)
	for i := 0; i < b.N; i++ {
		for _, wl := range []string{workload.NameEP, workload.NameX264, workload.NameBlackscholes} {
			if _, err := s.Figure6(wl); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure7ClusterProportionality regenerates Figure 7 (EP on
// the budget ladder).
func BenchmarkFigure7ClusterProportionality(b *testing.B) {
	s := newSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure7(workload.NameEP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8ClusterPPR regenerates Figure 8.
func BenchmarkFigure8ClusterPPR(b *testing.B) {
	s := newSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Figure8(workload.NameEP); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure9ParetoEP regenerates Figure 9: Pareto-frontier
// configurations of EP against the 32A9+12K10 reference, reporting how
// many plotted configurations scale the proportionality wall.
func BenchmarkFigure9ParetoEP(b *testing.B) {
	s := newSuite(b)
	var sub int
	for i := 0; i < b.N; i++ {
		fig, err := s.FigurePareto(workload.NameEP, 6)
		if err != nil {
			b.Fatal(err)
		}
		sub = fig.SublinearCount()
	}
	b.ReportMetric(float64(sub), "sublinear-configs")
}

// BenchmarkFigure10ParetoX264 regenerates Figure 10.
func BenchmarkFigure10ParetoX264(b *testing.B) {
	s := newSuite(b)
	var sub int
	for i := 0; i < b.N; i++ {
		fig, err := s.FigurePareto(workload.NameX264, 6)
		if err != nil {
			b.Fatal(err)
		}
		sub = fig.SublinearCount()
	}
	b.ReportMetric(float64(sub), "sublinear-configs")
}

// BenchmarkFigure11ResponseTimeEP regenerates Figure 11 and reports the
// across-mix response-time spread at mid utilization (the paper's
// "sub-millisecond" claim for EP).
func BenchmarkFigure11ResponseTimeEP(b *testing.B) {
	s := newSuite(b)
	var spread float64
	for i := 0; i < b.N; i++ {
		series, err := s.FigureResponse(workload.NameEP, 95)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := analysis.ResponseSpread(series)
		if err != nil {
			b.Fatal(err)
		}
		spread = sp[len(sp)/2]
	}
	b.ReportMetric(spread*1000, "p95-spread-ms@~60%")
}

// BenchmarkFigure12ResponseTimeX264 regenerates Figure 12 (the
// seconds-scale spread for x264).
func BenchmarkFigure12ResponseTimeX264(b *testing.B) {
	s := newSuite(b)
	var spread float64
	for i := 0; i < b.N; i++ {
		series, err := s.FigureResponse(workload.NameX264, 95)
		if err != nil {
			b.Fatal(err)
		}
		sp, err := analysis.ResponseSpread(series)
		if err != nil {
			b.Fatal(err)
		}
		spread = sp[len(sp)/2]
	}
	b.ReportMetric(spread, "p95-spread-s@~60%")
}

// BenchmarkConfigSpaceEnumeration enumerates the footnote-4 space
// (36,380 configurations of 10 ARM + 10 AMD nodes).
func BenchmarkConfigSpaceEnumeration(b *testing.B) {
	s := newSuite(b)
	var n int
	for i := 0; i < b.N; i++ {
		arm, err := s.Catalog.Lookup("A9")
		if err != nil {
			b.Fatal(err)
		}
		amd, err := s.Catalog.Lookup("K10")
		if err != nil {
			b.Fatal(err)
		}
		n = 0
		err = cluster.Enumerate([]cluster.Limit{
			{Type: arm, MaxNodes: 10},
			{Type: amd, MaxNodes: 10},
		}, func(cluster.Config) bool { n++; return true })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "configs")
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationWorkSplit compares the paper's rate-matched work
// split against a naive equal-per-node split, reporting the time penalty
// of ignoring heterogeneity when dividing work.
func BenchmarkAblationWorkSplit(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := mix(s, 32, 12)
	if err != nil {
		b.Fatal(err)
	}
	var penalty float64
	for i := 0; i < b.N; i++ {
		res, err := model.Evaluate(cfg, wl, model.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Naive split: each node gets the same number of units; the
		// makespan is set by the slowest node type.
		totalNodes := cfg.Nodes()
		perNode := wl.JobUnits / float64(totalNodes)
		worst := units.Seconds(0)
		for _, g := range cfg.Groups {
			d, err := wl.Demand(g.Type.Name)
			if err != nil {
				b.Fatal(err)
			}
			tCore := units.Seconds(perNode * float64(d.CoreCycles) / (float64(g.Cores) * float64(g.Freq)))
			tMem := units.Seconds(perNode * float64(d.MemCycles) / float64(g.Freq))
			t := tCore
			if tMem > t {
				t = tMem
			}
			if t > worst {
				worst = t
			}
		}
		penalty = float64(worst) / float64(res.Time)
	}
	b.ReportMetric(penalty, "equal-split-slowdown-x")
}

// BenchmarkAblationMD1VsSim compares the exact Crommelin percentile with
// the Lindley Monte-Carlo estimate at rho=0.9: wall cost of each and the
// Monte-Carlo's deviation from the exact value.
func BenchmarkAblationMD1VsSim(b *testing.B) {
	q := queueing.MD1{Lambda: 0.9, D: 1}
	exact, err := q.ResponsePercentile(95)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("crommelin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := q.ResponsePercentile(95); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lindley-200k", func(b *testing.B) {
		var approx float64
		for i := 0; i < b.N; i++ {
			sim, err := queueing.SimulateMD1(q, queueing.SimOptions{Jobs: 200000, Warmup: 5000, Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			v, err := sim.Percentile(95)
			if err != nil {
				b.Fatal(err)
			}
			approx = v
		}
		dev := 100 * (approx/exact - 1)
		if dev < 0 {
			dev = -dev
		}
		b.ReportMetric(dev, "abs-dev-vs-exact-%")
	})
}

// BenchmarkAblationSwitchPower quantifies the switch's role in the 8:1
// substitution: without the 20 W-per-8-nodes switch share the ratio
// becomes 12:1 and the ladder changes shape.
func BenchmarkAblationSwitchPower(b *testing.B) {
	s := newSuite(b)
	var with, without int
	for i := 0; i < b.N; i++ {
		spec, err := cluster.DefaultBudget(s.Catalog)
		if err != nil {
			b.Fatal(err)
		}
		with = spec.SubstitutionRatio()
		spec.Switch.PowerPerSwitch = 0
		without = spec.SubstitutionRatio()
	}
	b.ReportMetric(float64(with), "ratio-with-switch")
	b.ReportMetric(float64(without), "ratio-without-switch")
}

// BenchmarkAblationFrequencyScaling sweeps the DVFS dynamic-power
// exponent for a compute-bound workload and reports the energy penalty
// of running at the lowest frequency instead of the highest. The system
// races to idle under any exponent — the idle floor dominates — but the
// penalty shrinks substantially as the exponent grows, which is why the
// exponent is a calibration-sensitive choice DESIGN.md flags.
func BenchmarkAblationFrequencyScaling(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameBlackscholes)
	if err != nil {
		b.Fatal(err)
	}
	var penalty1, penalty3 float64
	for i := 0; i < b.N; i++ {
		for _, exp := range []float64{1.0, 3.0} {
			a9base, err := s.Catalog.Lookup("A9")
			if err != nil {
				b.Fatal(err)
			}
			node := *a9base
			node.Freq.DynamicExponent = exp
			energyAt := func(f units.Hertz) float64 {
				cfg, err := cluster.NewConfig(cluster.Group{Type: &node, Count: 1, Cores: node.Cores, Freq: f})
				if err != nil {
					b.Fatal(err)
				}
				res, err := model.Evaluate(cfg, wl, model.Options{})
				if err != nil {
					b.Fatal(err)
				}
				return float64(res.Energy)
			}
			p := energyAt(node.FMin())/energyAt(node.FMax()) - 1
			if exp == 1.0 {
				penalty1 = p
			} else {
				penalty3 = p
			}
		}
	}
	b.ReportMetric(100*penalty1, "fmin-energy-penalty-%-exp1")
	b.ReportMetric(100*penalty3, "fmin-energy-penalty-%-exp3")
}

// BenchmarkModelEvaluate measures the raw model evaluation cost (the
// inner loop of every enumeration study).
func BenchmarkModelEvaluate(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := mix(s, 32, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(cfg, wl, model.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorRun measures the discrete-event simulator on the
// validation cluster.
func BenchmarkSimulatorRun(b *testing.B) {
	s := newSuite(b)
	wl, err := s.Registry.Lookup(workload.NameEP)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := mix(s, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Simulate(cfg, wl, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func mix(s *repro.Suite, nA9, nK10 int) (cluster.Config, error) {
	a9, err := s.Catalog.Lookup("A9")
	if err != nil {
		return cluster.Config{}, err
	}
	k10, err := s.Catalog.Lookup("K10")
	if err != nil {
		return cluster.Config{}, err
	}
	var groups []cluster.Group
	if nA9 > 0 {
		groups = append(groups, cluster.FullNodes(a9, nA9))
	}
	if nK10 > 0 {
		groups = append(groups, cluster.FullNodes(k10, nK10))
	}
	return cluster.NewConfig(groups...)
}
