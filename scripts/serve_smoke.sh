#!/bin/sh
# serve_smoke.sh — end-to-end smoke gate for epserve.
#
# Builds epserve and loadgen, starts the service on an ephemeral port,
# warms the caches, drives the default load mix for 5 seconds, scrapes
# /metrics, and fails on:
#   - any 5xx or transport-level failure during the run,
#   - warm-cache p99 client latency above the bound (default 25ms;
#     the acceptance target of 5ms applies to the single-path warm run
#     below, measured separately with low concurrency),
#   - an unclean drain on SIGTERM.
#
# Usage: scripts/serve_smoke.sh [duration] [concurrency]
set -eu

DURATION="${1:-5s}"
CONCURRENCY="${2:-16}"
GO="${GO:-go}"

workdir="$(mktemp -d)"
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
server_pid=""

echo "== building epserve and loadgen"
"$GO" build -o "$workdir/epserve" ./cmd/epserve
"$GO" build -o "$workdir/loadgen" ./cmd/loadgen

echo "== starting epserve"
"$workdir/epserve" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    >"$workdir/epserve.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || {
        echo "epserve died during startup:"; cat "$workdir/epserve.log"; exit 1; }
    sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "epserve never wrote its address"; exit 1; }
URL="http://$(cat "$workdir/addr")"
echo "   listening on $URL"

echo "== warmup (1s, default mix)"
"$workdir/loadgen" -url "$URL" -duration 1s -concurrency 4 >/dev/null

echo "== warm-cache latency gate: /v1/percentiles p99 < 5ms"
"$workdir/loadgen" -url "$URL" -duration 2s -concurrency 4 \
    -paths "/v1/percentiles?d=1&u=0.9" -fail-on-5xx -max-p99 5ms

echo "== mixed load: $DURATION at concurrency $CONCURRENCY, zero 5xx allowed"
"$workdir/loadgen" -url "$URL" -duration "$DURATION" -concurrency "$CONCURRENCY" -fail-on-5xx

echo "== scraping /metrics"
metrics="$workdir/metrics.prom"
if command -v curl >/dev/null 2>&1; then
    curl -fsS "$URL/metrics" >"$metrics"
else
    "$GO" run ./scripts/fetch "$URL/metrics" >"$metrics"
fi
for family in serve_admitted http_percentiles_requests http_percentiles_seconds_bucket; do
    grep -q "^$family" "$metrics" || {
        echo "metric family $family missing from /metrics:"; head -40 "$metrics"; exit 1; }
done
if grep -E '^http_[a-z_]+_status_5xx [1-9]' "$metrics"; then
    echo "server-side 5xx counters are non-zero"; exit 1
fi
echo "   $(wc -l <"$metrics") exposition lines, no 5xx recorded"

echo "== request-scoped observability"
if command -v curl >/dev/null 2>&1; then
    hdrs="$workdir/headers.txt"
    curl -fsS -D "$hdrs" -o /dev/null -H 'X-Request-ID: smoke-check-1' \
        "$URL/v1/percentiles?d=1&u=0.9"
    grep -qi '^x-request-id: smoke-check-1' "$hdrs" || {
        echo "X-Request-ID response header missing or not echoed:"
        cat "$hdrs"; exit 1; }
    grep -q 'request_id=smoke-check-1' "$workdir/epserve.log" || {
        echo "no access-log line for request smoke-check-1:"
        tail -20 "$workdir/epserve.log"; exit 1; }
else
    # scripts/fetch is body-only; fall back to asserting the access log
    # alone (every load-run request must have produced one line).
    echo "   curl unavailable; checking access log only"
fi
grep -q 'msg=request .*route=percentiles .*request_id=' "$workdir/epserve.log" || {
    echo "no structured access-log lines in epserve.log:"
    tail -20 "$workdir/epserve.log"; exit 1; }
echo "   access log and X-Request-ID verified"

echo "== graceful drain on SIGTERM"
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    echo "epserve still running 10s after SIGTERM"; exit 1
fi
wait "$server_pid" 2>/dev/null || { echo "epserve exited non-zero on drain:"; cat "$workdir/epserve.log"; exit 1; }
grep -q "drained cleanly" "$workdir/epserve.log" || {
    echo "no clean-drain log line:"; cat "$workdir/epserve.log"; exit 1; }
server_pid=""

echo "serve-smoke: OK"
