// Command fetch is a minimal curl substitute for scripts/serve_smoke.sh
// on machines without curl: it GETs one URL and copies the body to
// stdout, exiting non-zero on any non-2xx status.
package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: fetch URL")
		os.Exit(2)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fmt.Fprintln(os.Stderr, "fetch:", err)
		os.Exit(1)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		fmt.Fprintln(os.Stderr, "fetch: status", resp.Status)
		os.Exit(1)
	}
}
