#!/bin/sh
# logs_demo.sh — show the request-scoped observability live.
#
# Boots epserve with debug-level JSON logging on an ephemeral port,
# drives a short loadgen burst (default mix), then prints the captured
# structured log so the access-log shape is visible: one "request" line
# per request with request_id, route, status, duration, and the
# attribution fields (configs_evaluated, cache_hits, ...), plus any
# sampled "slow request" lines with their phase timeline.
#
# Usage: scripts/logs_demo.sh [duration] [concurrency]
set -eu

DURATION="${1:-2s}"
CONCURRENCY="${2:-4}"
GO="${GO:-go}"

workdir="$(mktemp -d)"
trap '[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT
server_pid=""

echo "== building epserve and loadgen"
"$GO" build -o "$workdir/epserve" ./cmd/epserve
"$GO" build -o "$workdir/loadgen" ./cmd/loadgen

echo "== starting epserve (-log-level=debug -log-format=json)"
"$workdir/epserve" -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    -log-level=debug -log-format=json \
    >"$workdir/epserve.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || {
        echo "epserve died during startup:"; cat "$workdir/epserve.log"; exit 1; }
    sleep 0.1
done
[ -s "$workdir/addr" ] || { echo "epserve never wrote its address"; exit 1; }
URL="http://$(cat "$workdir/addr")"
echo "   listening on $URL"

echo "== driving $DURATION of load at concurrency $CONCURRENCY"
"$workdir/loadgen" -url "$URL" -duration "$DURATION" -concurrency "$CONCURRENCY"

kill -TERM "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo
echo "== structured log (last 40 lines)"
tail -40 "$workdir/epserve.log"
echo
echo "logs-demo: captured $(grep -c '"msg":"request"' "$workdir/epserve.log" || true) access-log lines"
