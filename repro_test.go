package repro_test

// Integration tests of the public facade: every workflow the README
// advertises, exercised end to end through the repro package only.

import (
	"math"
	"testing"

	"repro"
	"repro/internal/stats"
)

func setupAPI(t *testing.T) (*repro.Catalog, *repro.WorkloadRegistry) {
	t.Helper()
	catalog := repro.DefaultCatalog()
	workloads, err := repro.PaperWorkloads(catalog)
	if err != nil {
		t.Fatal(err)
	}
	return catalog, workloads
}

func referenceMix(t *testing.T, catalog *repro.Catalog) repro.Config {
	t.Helper()
	a9, err := catalog.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := repro.NewConfig(repro.FullNodes(a9, 32), repro.FullNodes(k10, 12))
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestQuickstartWorkflow(t *testing.T) {
	catalog, workloads := setupAPI(t)
	cfg := referenceMix(t, catalog)
	ep, err := workloads.Lookup("EP")
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Evaluate(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.Energy <= 0 {
		t.Fatalf("degenerate result: %v / %v", res.Time, res.Energy)
	}
	a, err := repro.Analyze(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	m := a.Metrics()
	if m.IPR <= 0 || m.IPR >= 1 {
		t.Errorf("IPR = %g", m.IPR)
	}
	p95, err := a.ResponsePercentileAt(0.7, 95)
	if err != nil {
		t.Fatal(err)
	}
	if p95 <= float64(res.Time) {
		t.Errorf("p95 %g not above service time %v", p95, res.Time)
	}
}

func TestProportionalityMetricsWrapper(t *testing.T) {
	catalog, workloads := setupAPI(t)
	cfg := referenceMix(t, catalog)
	ep, err := workloads.Lookup("EP")
	if err != nil {
		t.Fatal(err)
	}
	m, err := repro.ProportionalityMetrics(cfg, ep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.EPM-(1-m.IPR)) > 1e-9 {
		t.Errorf("EPM %g != 1-IPR %g for the model's linear curve", m.EPM, 1-m.IPR)
	}
}

func TestParetoFrontierWorkflow(t *testing.T) {
	catalog, workloads := setupAPI(t)
	bs, err := workloads.Lookup("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := catalog.Lookup("A9")
	k10, _ := catalog.Lookup("K10")
	limits := []repro.Limit{
		{Type: a9, MaxNodes: 8, FixCoresAndFreq: true},
		{Type: k10, MaxNodes: 4, FixCoresAndFreq: true},
	}
	front, err := repro.ParetoFrontier(limits, bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(front); i++ {
		if front[i].Time <= front[i-1].Time || front[i].Energy >= front[i-1].Energy {
			t.Fatal("frontier not strictly improving")
		}
	}
}

func TestSimulateAndValidateWorkflow(t *testing.T) {
	catalog, workloads := setupAPI(t)
	a9, _ := catalog.Lookup("A9")
	k10, _ := catalog.Lookup("K10")
	cfg, err := repro.NewConfig(repro.FullNodes(a9, 4), repro.FullNodes(k10, 2))
	if err != nil {
		t.Fatal(err)
	}
	julius, err := workloads.Lookup("Julius")
	if err != nil {
		t.Fatal(err)
	}
	sim, err := repro.Simulate(cfg, julius, 99)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Time <= 0 || sim.Measured.Energy <= 0 {
		t.Fatal("degenerate simulation")
	}
	row, err := repro.Validate(cfg, julius, 99)
	if err != nil {
		t.Fatal(err)
	}
	if row.TimeErrPct < 0 || row.TimeErrPct > 25 {
		t.Errorf("validation error %.1f%% out of band", row.TimeErrPct)
	}
}

func TestCustomWorkloadWorkflow(t *testing.T) {
	catalog, _ := setupAPI(t)
	wl := repro.NewWorkload("custom", "ops", 1e6)
	if err := wl.SetDemand("A9", repro.Demand{CoreCycles: 500, MemCycles: 50, Intensity: 0.4}); err != nil {
		t.Fatal(err)
	}
	a9, _ := catalog.Lookup("A9")
	cfg, err := repro.NewConfig(repro.FullNodes(a9, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Evaluate(cfg, wl)
	if err != nil {
		t.Fatal(err)
	}
	// 1e6 units x 500 cycles over 2 nodes x 4 cores x 1.4 GHz.
	want := 1e6 * 500 / (2 * 4 * 1.4e9)
	if stats.RelErr(float64(res.Time), want) > 1e-9 {
		t.Errorf("time %v, want %g s", res.Time, want)
	}
}

func TestAdaptivePlanWorkflow(t *testing.T) {
	catalog, workloads := setupAPI(t)
	ep, err := workloads.Lookup("EP")
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := catalog.Lookup("A9")
	k10, _ := catalog.Lookup("K10")
	var cands []*repro.Analysis
	for _, m := range [][2]int{{32, 12}, {25, 5}} {
		cfg, err := repro.NewConfig(repro.FullNodes(a9, m[0]), repro.FullNodes(k10, m[1]))
		if err != nil {
			t.Fatal(err)
		}
		a, err := repro.Analyze(cfg, ep)
		if err != nil {
			t.Fatal(err)
		}
		cands = append(cands, a)
	}
	plan, err := repro.PlanAdaptive(cands, repro.AdaptivePolicy{}, stats.Linspace(0.1, 0.9, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatal("plan infeasible")
	}
	if plan.Savings() <= 0 {
		t.Errorf("no savings from adaptation: %g", plan.Savings())
	}
}

func TestBudgetWorkflow(t *testing.T) {
	catalog, _ := setupAPI(t)
	budget, err := repro.DefaultBudget(catalog)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := budget.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	if len(ladder) != 5 {
		t.Fatalf("ladder has %d mixes, want 5", len(ladder))
	}
	if budget.SubstitutionRatio() != 8 {
		t.Errorf("substitution ratio %d, want 8", budget.SubstitutionRatio())
	}
}

func TestMD1PublicType(t *testing.T) {
	q := repro.MD1{Lambda: 50, D: 0.01} // utilization 0.5
	p95, err := q.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if p95 <= 0.01 {
		t.Errorf("p95 %g not above service time", p95)
	}
}

func TestSuiteFromFacade(t *testing.T) {
	s, err := repro.NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Errorf("table 6 rows = %d", len(rows))
	}
}
